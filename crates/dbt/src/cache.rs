//! Translated-code cache over one kind of translation unit: the **region**.
//!
//! Every translation this cache holds is a [`Region`] — a single host-code
//! unit covering 1..N guest basic blocks (its *constituents*).  A plain
//! basic-block translation is simply a one-constituent region; a trace
//! stitched over a hot chain path (what earlier revisions called a
//! "superblock") is an N-constituent one, possibly with a single-block
//! self-loop *unrolled* several times.  There is one index, one insertion
//! path, one invalidation story and one chain-link mechanism for all of
//! them; nothing in this module special-cases the multi-constituent shape
//! beyond the generation gate described below.
//!
//! # Indexing and sharding
//!
//! Regions are keyed by [`RegionKey`]: the guest *physical* address of the
//! entry instruction plus its guest *virtual* entry class.  The physical
//! component is what lets Captive's translations survive guest page-table
//! changes (Section 2.6 of the paper); the virtual component exists because
//! generated code embeds virtual addresses (branch targets, the PC), so a
//! translation is only reusable at the exact virtual entry it was made for.
//! Two virtual aliases of one hot physical entry therefore each get their
//! own live region instead of contending for a single per-physical slot.
//! The QEMU-style baseline stores its virtually-indexed translations in the
//! same structure ([`CacheIndex::GuestVirtual`]) and simply flushes
//! everything on guest translation-state changes.
//!
//! The index is **shard-locked**: keys hash onto [`SHARD_COUNT`]
//! `RwLock`-protected maps, so the run thread's dispatch lookups and the
//! tier-1 formation workers' profile peeks proceed without a global lock,
//! and two threads only contend when their keys collide on a shard.  All
//! statistics (and the invalidation epoch) are atomics, so every method
//! takes `&self` and the cache is `Send + Sync` — the property the tiered
//! translation service (`captive::tier`) is built on.
//!
//! **Lock order.**  The capacity ring and the shards are the only two lock
//! classes.  The rule is: a thread may acquire shard locks *while holding*
//! the ring lock (the eviction sweep does), but must never acquire the ring
//! lock while holding a shard lock ([`CodeCache::insert`] releases the
//! shard before touching the ring), and never holds two shard locks at
//! once.  That total order makes deadlock impossible.
//!
//! # Direct block chaining
//!
//! Each region carries terminator metadata ([`BlockExit`]) computed at
//! translation time, plus up to two lazily patched successor links (slot 0 =
//! the jump/taken/sequential target, slot 1 = the conditional fallthrough).
//! A link records:
//!
//! * a [`Weak`] reference to the successor region — invalidating (or
//!   replacing) a region drops the cache's strong reference, so every chain
//!   link pointing at it dies automatically, with no scan over predecessors;
//! * the *context generation* (owned by the hypervisor, bumped on guest
//!   TLBI / `TTBR0` / `SCTLR` writes — anything that can change the VA→PA
//!   mapping a link's target address was resolved under);
//! * the *cache epoch* (owned by this cache, bumped whenever an invalidation
//!   removes regions — this catches the case where the dispatcher still
//!   holds a strong reference to an invalidated region, so the `Weak` alone
//!   would keep a stale self-link alive).
//!
//! A link is only followed while both stamps match the current values; a
//! stale link simply falls back to the dispatcher slow path, which
//! re-resolves and re-patches it.  Links also carry a *heat* counter — the
//! profile input that drives multi-constituent region formation in the
//! dispatcher.  Link slots are mutex-protected so a formation worker can
//! read a profile snapshot while the run thread keeps heating the links.
//!
//! # Multi-constituent and looping regions
//!
//! The region former (see `captive::translator`) re-decodes a hot chained
//! path as one translation: direct jumps and fallthroughs become internal
//! [`hvm::MachInsn::TraceEdge`] transfers, and the off-trace leg of an
//! interior conditional becomes a side-exit stub restoring precise guest PC
//! state.  A back edge to an already-traced constituent closes as a
//! **region-internal backward transfer** ([`hvm::MachInsn::BackEdge`] to a
//! label bound at the target's first constituent), making the region
//! *looping*: a hot loop — single- or multi-block body, with up to
//! `unroll` peeled copies — iterates entirely inside translated code, and
//! only cold legs and the loop exit return to the dispatcher.  The
//! resulting region is inserted through the ordinary [`CodeCache::insert`],
//! replacing the plain one-constituent region at the same key — chain links
//! into the replaced region die with its `Arc`, and the next transfer
//! re-resolves to the richer translation.  Under the tiered service the
//! region may have been *formed on a background worker* against an
//! immutable snapshot; the replace-at-key install is identical, and the
//! same generation/epoch/SMC gates decide whether the formed region is
//! still installable at all.
//!
//! **Back-edge rules.** The back-edge is a *virtual* control transfer
//! decided at formation time, so a looping region obeys three invariants:
//! its loop label corresponds to a real constituent entry (the back-edge's
//! folded PC update makes guest state precise at every iteration
//! boundary); the interpreter polls the runtime at each back-edge so
//! pending events (self-modifying code, queued guest events) bound the
//! stale-execution window to the current iteration; and trips per entry
//! are capped (`hvm::Machine::loop_trip_limit`), the loop *yielding* to
//! the dispatcher with precise PC so block budgets still progress on
//! long-running or infinite guest loops.
//!
//! **Generation gate.** A multi-constituent or looping region embeds
//! virtual control-flow decisions ([`Region::gated`]), so it is only
//! returned by [`CodeCache::get`] while the current context generation
//! matches its formation stamp; a plain one-constituent region is valid in
//! every generation (its key already pins the physical entry).  Stale
//! gated regions are counted as lookup misses and are swept wholesale by
//! [`CodeCache::evict_stale_regions`] the first time the dispatcher runs
//! after a generation bump.
//!
//! **Invalidation.** Every region records the guest physical pages its
//! constituents occupy; self-modifying code on *any* of them discards the
//! region via [`CodeCache::invalidate_phys_page`], which also bumps the
//! epoch so dispatcher-held references die.  There is no separate path for
//! multi-constituent or looping regions — the page list is simply longer,
//! and a write landing *while the loop is executing* takes effect at the
//! next back-edge poll rather than waiting for the loop to drain.
//!
//! # Capacity and eviction
//!
//! The cache is unbounded by default; [`CodeCache::set_capacity`] installs an
//! optional byte bound (encoded host-code bytes resident) and/or a region
//! bound.  When an [`CodeCache::insert`] pushes the cache over either bound,
//! a **clock (second-chance)** sweep evicts translations until the cache fits
//! again: regions sit in an insertion-order ring, every dispatch-path hit
//! ([`CodeCache::get`]) sets the region's reference bit, and the sweep hand
//! clears the bit and re-queues referenced regions but discards unreferenced
//! ones.  Hot translations therefore survive churn while cold ones pay for
//! it; a guest that thrashes the cache (an interrupt storm re-translating
//! handler paths, self-modifying code defeating reuse) degrades to more
//! re-translation — never to unbounded host memory growth.  The freshly
//! inserted region is exempt from its own insertion's sweep, so a single
//! oversized region is admitted rather than looping.  Capacity evictions bump
//! the epoch exactly like invalidations do: chain links into — and
//! dispatcher-held links out of — an evicted region die immediately, so a
//! capacity-bounded run is architecturally indistinguishable from an
//! unbounded one (only slower).  [`CacheStats`] reports the eviction count
//! plus live occupancy (`bytes_live`, `regions_live`).
//!
//! # Content-keyed translation reuse
//!
//! Forming a region is expensive; forming the *same* region twice because
//! two runs (or, eventually, two guests) execute the same kernel image is
//! pure waste.  The [`ReuseCache`] is a second, content-addressed layer:
//! a formed region is published as a [`ReuseTemplate`] under a
//! [`ReuseKey`] — entry physical/virtual address, the codegen knobs it was
//! formed under, and an FNV hash of the entry page's bytes — together with
//! the content hash of *every* constituent page.  A later run (sharing the
//! cache via `Arc`) revalidates each candidate template by hashing its
//! live pages; only a template whose every page still matches is
//! instantiated, as a fresh [`Region`] with fresh links and the current
//! context generation.  Self-modified or simply different code therefore
//! can never be reused by accident: the key and the validation are both
//! functions of page *content*, not addresses alone.
//!
//! # Lookup statistics
//!
//! [`CodeCache::get`] is the *only* dispatch-path lookup and it feeds the
//! atomic hit/miss counters unconditionally (a stale-generation region
//! counts as a miss: the dispatcher must translate), so
//! [`CacheStats::hit_rate`] is faithful on region-heavy runs and sound
//! under concurrent lookups.  [`CodeCache::peek`] is reserved for the
//! region former's profile consultation and deliberately leaves the
//! statistics alone (it neither counts nor marks the region referenced).

use hvm::{Gpr, MachInsn};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

/// How regions are keyed in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheIndex {
    /// The physical component of the key is authoritative: translations
    /// survive guest page-table changes (Captive's policy).
    GuestPhysical,
    /// The cache is conceptually virtual-indexed and must be flushed
    /// wholesale whenever the guest changes translation state (the
    /// QEMU-style policy; the key's physical component is then only as
    /// durable as the flush discipline makes it).
    GuestVirtual,
}

/// The cache key of a region: guest physical entry address plus the virtual
/// entry class the code was generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// Guest physical address of the entry instruction.
    pub phys: u64,
    /// Guest virtual address the entry was translated at (generated code
    /// embeds virtual branch targets, so this is part of the identity).
    pub virt: u64,
}

/// Where control goes when a translated region exits — terminator metadata
/// recorded at translation time and consumed by the chaining dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockExit {
    /// Successor unknown at translation time: register-indirect branch,
    /// exception, `ERET`, or a system-register write that may change
    /// translation state.  Never chained.
    #[default]
    Indirect,
    /// Unconditional direct branch to a fixed guest virtual address.
    Jump {
        /// Branch target.
        target: u64,
    },
    /// Conditional direct branch with both destinations fixed.
    Branch {
        /// Taken target.
        taken: u64,
        /// Fall-through address.
        fallthrough: u64,
    },
    /// The region ended at the instruction limit or a page boundary and
    /// falls through sequentially.
    Fallthrough {
        /// Address of the next sequential instruction.
        next: u64,
    },
}

/// A resolved successor link: valid while both stamps match the current
/// translation context and the target region is still cached.
#[derive(Debug, Clone)]
struct ChainLink {
    ctx_gen: u64,
    cache_epoch: u64,
    /// Transfers that followed this link (profile input for region
    /// formation; reset whenever the link is re-patched).
    heat: u64,
    to: Weak<Region>,
}

/// The lazily patched successor links of a region.  Slots are mutexed so
/// the run thread can patch and heat links while tier-1 workers read the
/// profile; contention is per-slot and the critical sections are a few
/// loads, so the locks are effectively free.
#[derive(Debug, Default)]
pub struct ChainLinks {
    slots: [Mutex<Option<ChainLink>>; 2],
}

/// How the dispatcher entered a region (per-region profile attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryMode {
    /// Slow path: page resolution + cache lookup + exception-level read.
    Dispatched = 0,
    /// A patched chain link, bypassing the dispatcher.
    Chained = 1,
}

/// Per-region execution record (the code-quality scatter plot, Fig. 21),
/// with cycles and executions attributed per [`EntryMode`].  A region's
/// shape is carried alongside (`guest_insns`, `constituents`), so consumers
/// can distinguish multi-constituent entries without a third attribution
/// axis: "superblock executions" are simply entries of a region whose
/// `constituents > 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionProfile {
    /// Guest instructions covered by the region.
    pub guest_insns: u64,
    /// Constituent basic blocks in the region (1 = plain block).
    pub constituents: u64,
    /// Back-edge transfers taken inside this region's entries (loop trips
    /// that never touched the dispatcher; 0 for non-looping regions).
    pub backedge_trips: u64,
    cycles: [u64; 2],
    executions: [u64; 2],
}

impl RegionProfile {
    /// Records one entry of the region under `mode`, spending `cycles`.
    pub fn record(&mut self, mode: EntryMode, cycles: u64) {
        self.cycles[mode as usize] += cycles;
        self.executions[mode as usize] += 1;
    }

    /// Cycles accumulated by entries of the given mode.
    pub fn cycles(&self, mode: EntryMode) -> u64 {
        self.cycles[mode as usize]
    }

    /// Entries of the given mode.
    pub fn executions(&self, mode: EntryMode) -> u64 {
        self.executions[mode as usize]
    }

    /// Cycles over all entry modes.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Entries over all modes.
    pub fn total_executions(&self) -> u64 {
        self.executions.iter().sum()
    }
}

/// One translation unit: host code covering 1..N guest basic blocks.
#[derive(Debug)]
pub struct Region {
    /// Guest physical address of the entry instruction.
    pub guest_phys: u64,
    /// Guest virtual address of the entry instruction.
    pub guest_virt: u64,
    /// Number of guest instructions translated (all constituents).
    pub guest_insns: usize,
    /// Host code (interpreted by the HVM64 machine).
    pub code: Arc<Vec<MachInsn>>,
    /// Size of the byte-encoded host code.
    pub encoded_bytes: usize,
    /// Host instructions before dead-code elimination (diagnostic).
    pub lir_insns: usize,
    /// LIR instructions eliminated before encoding (optimiser deletions plus
    /// allocator dead-marks); multiplied by executions it yields the dynamic
    /// instructions-saved counters.
    pub elided_insns: usize,
    /// Terminator metadata for direct chaining.
    pub exit: BlockExit,
    /// Successor links, patched lazily by the dispatcher.
    pub links: ChainLinks,
    /// Constituent basic blocks stitched into this region (1 = plain block).
    pub constituents: usize,
    /// Guest physical pages the constituents occupy; self-modifying code on
    /// any of them kills the region.
    pub pages: Vec<u64>,
    /// Context generation the region was formed under.  Multi-constituent
    /// regions stitch a virtual control-flow path and are only dispatched
    /// while this matches; one-constituent regions ignore it.
    pub ctx_gen: u64,
    /// Copies of the loop body stitched by unrolling (1 = not unrolled;
    /// 2..=N for a peeled loop — single- or multi-block).
    pub unroll: usize,
    /// Region-internal back-edges closed by the former (0 or 1).  A looping
    /// region iterates entirely inside translated code: the loop-back is a
    /// [`hvm::MachInsn::BackEdge`] to an internal label, and only cold legs
    /// and the loop exit return to the dispatcher (through side-exit stubs
    /// with precise PC).
    pub back_edges: usize,
    /// Guest instructions in the looping portion (the constituents from the
    /// loop header's first copy through the closing branch): the guest
    /// retires this many *additional* instructions per back-edge transfer
    /// taken, on top of the per-entry `guest_insns`.
    pub loop_guest_insns: usize,
    /// Eliminated-LIR share of the looping portion (pro-rated from
    /// `elided_insns` by guest-instruction weight): credited once per
    /// back-edge transfer by the dynamic instructions-saved accounting.
    pub loop_elided_insns: usize,
    /// Dirty loop-promoted register-file slots: (regfile byte offset, host
    /// register carrying the loop-resident value).  Every in-code exit path
    /// reconciles these itself; the engine consults this list only on a
    /// *fault* exit, storing each host register back to its slot before
    /// delivering the event so the guest observes a precise register file.
    /// Empty for unpromoted translations.
    pub promoted: Vec<(i32, Gpr)>,
    /// Per-rule idiom-recogniser candidate counts from this region's
    /// translation (see [`crate::idiom::IdiomStats::candidates`]).  The rule
    /// miner weighs these by the region's profiled executions to rank rules
    /// by dynamic relevance.
    pub idiom_candidates: [u32; crate::idiom::RULE_COUNT],
}

impl Region {
    /// The cache key identifying this region.
    pub fn key(&self) -> RegionKey {
        RegionKey {
            phys: self.guest_phys,
            virt: self.guest_virt,
        }
    }

    /// True when the region stitches more than one guest basic block.
    pub fn is_multi(&self) -> bool {
        self.constituents > 1
    }

    /// True when the region embeds a *virtual* control-flow decision made at
    /// formation time — a stitched multi-constituent path or a loop closed
    /// by an internal back-edge — and is therefore subject to the
    /// context-generation gate in [`CodeCache::get`].
    pub fn gated(&self) -> bool {
        self.is_multi() || self.back_edges > 0
    }

    /// Guest physical pages covered by a straight-line span of `insns`
    /// fixed 4-byte instructions starting at `phys` (the page list of a
    /// one-constituent region).
    pub fn span_pages(phys: u64, insns: usize) -> Vec<u64> {
        let start = phys & !0xFFF;
        let end = phys + insns as u64 * 4;
        (start..end.max(start + 1))
            .step_by(4096)
            .map(|p| p & !0xFFF)
            .collect()
    }

    /// Index of the chain slot whose guest target is `next_va`, if the
    /// terminator makes that successor a chaining candidate.
    pub fn chain_slot(&self, next_va: u64) -> Option<usize> {
        match self.exit {
            BlockExit::Jump { target } if next_va == target => Some(0),
            BlockExit::Fallthrough { next } if next_va == next => Some(0),
            BlockExit::Branch { taken, .. } if next_va == taken => Some(0),
            BlockExit::Branch { fallthrough, .. } if next_va == fallthrough => Some(1),
            _ => None,
        }
    }

    /// Follows the link in `slot` if it was patched under the current
    /// context generation and cache epoch and its target is still cached.
    pub fn follow_link(&self, slot: usize, ctx_gen: u64, cache_epoch: u64) -> Option<Arc<Region>> {
        let guard = self.links.slots[slot].lock().unwrap();
        let link = guard.as_ref()?;
        if link.ctx_gen == ctx_gen && link.cache_epoch == cache_epoch {
            link.to.upgrade()
        } else {
            None
        }
    }

    /// Patches the link in `slot` to point at `to`, stamped with the context
    /// generation and cache epoch it was resolved under.  Resets the link's
    /// heat: the profile restarts for the new target.
    pub fn set_link(&self, slot: usize, ctx_gen: u64, cache_epoch: u64, to: &Arc<Region>) {
        *self.links.slots[slot].lock().unwrap() = Some(ChainLink {
            ctx_gen,
            cache_epoch,
            heat: 0,
            to: Arc::downgrade(to),
        });
    }

    /// Bumps the transfer counter of the link in `slot`, returning the new
    /// heat (0 when the slot holds no link).
    pub fn heat_up(&self, slot: usize) -> u64 {
        match self.links.slots[slot].lock().unwrap().as_mut() {
            Some(link) => {
                link.heat += 1;
                link.heat
            }
            None => 0,
        }
    }

    /// Current heat of the link in `slot` (0 when unpatched).
    pub fn link_heat(&self, slot: usize) -> u64 {
        self.links.slots[slot]
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |l| l.heat)
    }
}

/// Statistics kept by the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups that found a dispatchable region.
    pub hits: u64,
    /// Lookups that missed — no region at the key, or only a region whose
    /// generation gate refuses dispatch (a translation is required).
    pub misses: u64,
    /// Regions discarded by full invalidations.
    pub invalidated_full: u64,
    /// Regions discarded by per-page invalidations (self-modifying code).
    pub invalidated_page: u64,
    /// Stale-generation regions evicted by the context-generation sweep.
    pub evicted_stale_regions: u64,
    /// Regions evicted by the clock sweep to satisfy a capacity bound.
    pub capacity_evictions: u64,
    /// Encoded host-code bytes currently resident.
    pub bytes_live: u64,
    /// Regions currently resident.
    pub regions_live: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in [0, 1]; 1.0 when there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached region plus its clock reference bit (set on dispatch-path hits,
/// cleared when the eviction hand sweeps past).
#[derive(Debug)]
struct Slot {
    region: Arc<Region>,
    referenced: AtomicBool,
}

impl Slot {
    fn new(region: Arc<Region>) -> Self {
        Slot {
            region,
            referenced: AtomicBool::new(false),
        }
    }
}

/// Number of index shards; a power of two so shard selection is a mask.
pub const SHARD_COUNT: usize = 16;

/// Sentinel meaning "no capacity bound" in the atomic capacity fields.
const UNBOUNDED: usize = usize::MAX;

/// FNV-1a over a byte slice — the content hash used by the reuse layer
/// (page bytes → template identity) and by shard selection.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn shard_index(key: RegionKey) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in [key.phys, key.virt] {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Fold the high bits in: consecutive page-aligned keys otherwise cluster.
    ((h ^ (h >> 32)) as usize) & (SHARD_COUNT - 1)
}

/// The translation cache: one sharded index over every region.  All methods
/// take `&self`; the cache is `Send + Sync` and safe to share between the
/// run thread and tier-1 formation workers.
#[derive(Debug)]
pub struct CodeCache {
    index: CacheIndex,
    shards: [RwLock<HashMap<RegionKey, Slot>>; SHARD_COUNT],
    /// Insertion-order ring swept by the clock hand on capacity eviction.
    /// May hold keys already removed by invalidation; the sweep skips them.
    ring: Mutex<VecDeque<RegionKey>>,
    /// Bound on resident encoded host-code bytes ([`UNBOUNDED`] = none).
    capacity_bytes: AtomicUsize,
    /// Bound on resident region count ([`UNBOUNDED`] = none).
    capacity_regions: AtomicUsize,
    /// Bumped whenever an invalidation removes regions; chain links stamped
    /// with an older epoch are dead.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated_full: AtomicU64,
    invalidated_page: AtomicU64,
    evicted_stale_regions: AtomicU64,
    capacity_evictions: AtomicU64,
}

impl CodeCache {
    /// Creates an empty, unbounded cache with the given indexing policy.
    pub fn new(index: CacheIndex) -> Self {
        CodeCache {
            index,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            ring: Mutex::new(VecDeque::new()),
            capacity_bytes: AtomicUsize::new(UNBOUNDED),
            capacity_regions: AtomicUsize::new(UNBOUNDED),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated_full: AtomicU64::new(0),
            invalidated_page: AtomicU64::new(0),
            evicted_stale_regions: AtomicU64::new(0),
            capacity_evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: RegionKey) -> &RwLock<HashMap<RegionKey, Slot>> {
        &self.shards[shard_index(key)]
    }

    /// Installs (or lifts, with `None`) the capacity bounds, evicting
    /// immediately if the cache is already over a new bound.
    pub fn set_capacity(&self, bytes: Option<usize>, regions: Option<usize>) {
        self.capacity_bytes
            .store(bytes.unwrap_or(UNBOUNDED), Ordering::Relaxed);
        self.capacity_regions
            .store(regions.unwrap_or(UNBOUNDED), Ordering::Relaxed);
        self.enforce_capacity(None);
    }

    /// The indexing policy in force.
    pub fn index_kind(&self) -> CacheIndex {
        self.index
    }

    /// Current invalidation epoch (stamped into chain links at patch time).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Looks up the region dispatchable at `key` under the current context
    /// generation.  A multi-constituent region whose formation generation
    /// does not match is *not* dispatchable and counts as a miss.  Hit/miss
    /// accounting is atomic and fed by every lookup, region-shaped or not.
    pub fn get(&self, key: RegionKey, ctx_gen: u64) -> Option<Arc<Region>> {
        let shard = self.shard(key).read().unwrap();
        let found = shard
            .get(&key)
            .filter(|s| !s.region.gated() || s.region.ctx_gen == ctx_gen);
        match found {
            Some(slot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.referenced.store(true, Ordering::Relaxed);
                Some(Arc::clone(&slot.region))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a region without the generation gate or the hit/miss
    /// statistics (used by the region former to consult link heats and to
    /// avoid re-forming an existing multi-constituent region).
    pub fn peek(&self, key: RegionKey) -> Option<Arc<Region>> {
        self.shard(key)
            .read()
            .unwrap()
            .get(&key)
            .map(|s| Arc::clone(&s.region))
    }

    /// Inserts a region under its key, replacing any previous region there
    /// (e.g. the plain one-constituent region a freshly formed trace
    /// supersedes).  Dropping the replaced `Arc` kills chain links into it;
    /// no epoch bump is needed because the replacement is reachable through
    /// the same key, so the slow path re-resolves naturally.  If the insert
    /// pushes the cache over a capacity bound, the clock sweep evicts other
    /// regions until it fits (the new region itself is exempt from this
    /// insert's sweep).
    pub fn insert(&self, region: Region) -> Arc<Region> {
        let arc = Arc::new(region);
        let key = arc.key();
        let replaced = {
            let mut shard = self.shard(key).write().unwrap();
            shard.insert(key, Slot::new(Arc::clone(&arc)))
        };
        // Shard lock released before touching the ring (see the lock-order
        // rule in the module docs).
        if replaced.is_none() {
            self.ring.lock().unwrap().push_back(key);
        }
        self.enforce_capacity(Some(key));
        arc
    }

    /// True while a capacity bound is exceeded.
    fn over_capacity(&self) -> bool {
        let byte_bound = self.capacity_bytes.load(Ordering::Relaxed);
        if byte_bound != UNBOUNDED && self.bytes_live() > byte_bound {
            return true;
        }
        let region_bound = self.capacity_regions.load(Ordering::Relaxed);
        region_bound != UNBOUNDED && self.len() > region_bound
    }

    /// Clock (second-chance) sweep: evicts regions from the insertion-order
    /// ring until the cache is within its capacity bounds.  A referenced
    /// region gets its bit cleared and one more trip around the ring; the
    /// region at `keep` (the one just inserted) is never evicted by this
    /// sweep.  Evictions bump the epoch so dispatcher-held chain links die.
    /// Holds the ring lock for the whole sweep (acquiring shard locks
    /// inside it — the permitted order), so concurrent inserts serialize
    /// their sweeps rather than double-evicting.
    fn enforce_capacity(&self, keep: Option<RegionKey>) {
        let mut ring = self.ring.lock().unwrap();
        let mut evicted = 0u64;
        let mut spared_keep = false;
        while self.over_capacity() {
            let Some(key) = ring.pop_front() else {
                break;
            };
            if Some(key) == keep {
                if spared_keep {
                    // Only the protected region is left to sweep: admit it
                    // even though it exceeds the bound on its own.
                    ring.push_front(key);
                    break;
                }
                spared_keep = true;
                ring.push_back(key);
                continue;
            }
            let mut shard = self.shard(key).write().unwrap();
            let Some(slot) = shard.get(&key) else {
                continue; // already invalidated; drop the stale ring entry
            };
            if slot.referenced.swap(false, Ordering::Relaxed) {
                drop(shard);
                ring.push_back(key);
                spared_keep = false; // bit cleared: the next lap can evict
                continue;
            }
            shard.remove(&key);
            drop(shard);
            evicted += 1;
            spared_keep = false;
        }
        if evicted > 0 {
            self.capacity_evictions
                .fetch_add(evicted, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops ring entries whose region an invalidation already removed.
    fn prune_ring(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.retain(|&k| self.shard(k).read().unwrap().contains_key(&k));
    }

    /// Number of cached regions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// True if no regions are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().unwrap().is_empty())
    }

    /// Number of cached multi-constituent regions (stale-generation ones
    /// included until they are replaced, invalidated or swept).
    pub fn multi_region_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .values()
                    .filter(|slot| slot.region.is_multi())
                    .count()
            })
            .sum()
    }

    /// Snapshot of the branch-link profile: every cached conditional block's
    /// (taken, fallthrough) link heats, keyed by region.  A tier-1 formation
    /// request freezes this at publish time so workers choose continuation
    /// legs without touching the live cache.
    pub fn branch_profiles(&self) -> HashMap<RegionKey, (u64, u64)> {
        let mut heats = HashMap::new();
        for shard in &self.shards {
            for (key, slot) in shard.read().unwrap().iter() {
                if matches!(slot.region.exit, BlockExit::Branch { .. }) {
                    heats.insert(*key, (slot.region.link_heat(0), slot.region.link_heat(1)));
                }
            }
        }
        heats
    }

    /// Evicts every multi-constituent region whose formation context
    /// generation is not `ctx_gen`, returning how many were dropped.  The
    /// dispatcher calls this once per observed generation bump: stale
    /// regions can never be dispatched again (the generation gate in
    /// [`CodeCache::get`] refuses them), so keeping them only leaks memory
    /// on TLBI-heavy guests.  Dropping the `Arc`s also kills chain links
    /// into them; no epoch bump is needed because generation-stamped links
    /// are already dead.
    pub fn evict_stale_regions(&self, ctx_gen: u64) -> usize {
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            let before = shard.len();
            shard.retain(|_, s| !s.region.gated() || s.region.ctx_gen == ctx_gen);
            removed += before - shard.len();
        }
        self.evicted_stale_regions
            .fetch_add(removed as u64, Ordering::Relaxed);
        if removed > 0 {
            self.prune_ring();
        }
        removed
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated_full: self.invalidated_full.load(Ordering::Relaxed),
            invalidated_page: self.invalidated_page.load(Ordering::Relaxed),
            evicted_stale_regions: self.evicted_stale_regions.load(Ordering::Relaxed),
            capacity_evictions: self.capacity_evictions.load(Ordering::Relaxed),
            bytes_live: self.bytes_live() as u64,
            regions_live: self.len() as u64,
        }
    }

    /// Discards every translation (the QEMU-style response to a guest
    /// page-table change when indexing by virtual address).
    pub fn invalidate_all(&self) {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            removed += shard.len() as u64;
            shard.clear();
        }
        self.invalidated_full.fetch_add(removed, Ordering::Relaxed);
        self.ring.lock().unwrap().clear();
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Discards regions any of whose constituent guest code pages is
    /// `page_base` (Captive's response to a detected self-modifying write).
    /// One rule covers every region shape: a plain block dies when its span
    /// touches the page, a stitched trace when *any* constituent page does.
    /// Dropping the cache's `Arc`s kills chain links into the page; the
    /// epoch bump additionally kills links *from* regions the dispatcher
    /// still holds.
    pub fn invalidate_phys_page(&self, page_base: u64) {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            let before = shard.len();
            shard.retain(|_, s| !s.region.pages.contains(&page_base));
            removed += (before - shard.len()) as u64;
        }
        if removed > 0 {
            self.invalidated_page.fetch_add(removed, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Relaxed);
            self.prune_ring();
        }
    }

    /// Total bytes of encoded host code currently cached.
    pub fn total_encoded_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .values()
                    .map(|slot| slot.region.encoded_bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Alias of [`CodeCache::total_encoded_bytes`] used by the capacity
    /// check and occupancy statistics.
    fn bytes_live(&self) -> usize {
        self.total_encoded_bytes()
    }

    /// Total guest instructions covered by cached regions.
    pub fn total_guest_insns(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .values()
                    .map(|slot| slot.region.guest_insns)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Packs the codegen knobs a region was formed under into one word for the
/// [`ReuseKey`]: a template formed with different optimisation, unrolling
/// or tracing limits is a different translation and must never be reused
/// across configurations.  `idiom_table` is [`crate::idiom::RuleTable::hash`]
/// of the active idiom rule set (0 when the idiom layer is off): its low 32
/// bits join the key, so code generated under one mined rule set is never
/// instantiated under another.
#[allow(clippy::too_many_arguments)]
pub fn pack_knobs(
    soft_fp: bool,
    opt: bool,
    loop_regions: bool,
    promote: bool,
    idioms: bool,
    unroll: usize,
    max_insns: usize,
    idiom_table: u64,
) -> u64 {
    let table = if idioms { idiom_table } else { 0 };
    (soft_fp as u64)
        | ((opt as u64) << 1)
        | ((loop_regions as u64) << 2)
        | ((promote as u64) << 3)
        | ((idioms as u64) << 4)
        | (((unroll as u64) & 0xFF) << 8)
        | (((max_insns as u64) & 0xFFFF) << 16)
        | ((table & 0xFFFF_FFFF) << 32)
}

/// Identity of a reusable translation: where it enters, the knobs it was
/// formed under, and what the entry page's bytes hashed to at formation
/// time.  Two images whose entry pages differ can never collide; images
/// that share an entry page but diverge on an interior page are separated
/// by per-template validation of every constituent page hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReuseKey {
    /// Guest physical entry address.
    pub phys: u64,
    /// Guest virtual entry address (generated code embeds virtual PCs).
    pub virt: u64,
    /// Codegen knobs, packed by [`pack_knobs`].
    pub knobs: u64,
    /// FNV-1a hash of the entry page's bytes at formation time.
    pub entry_page_hash: u64,
}

/// A formed region published for content-keyed reuse: everything needed to
/// re-instantiate the region in another run, plus the content hash of every
/// constituent page for validation.  The host code is shared by `Arc` — a
/// thousand guests running one kernel image hold one copy.
#[derive(Debug, Clone)]
pub struct ReuseTemplate {
    /// Guest instructions covered (all constituents).
    pub guest_insns: usize,
    /// The formed host code, shared between all instantiations.
    pub code: Arc<Vec<MachInsn>>,
    /// Encoded host-code size in bytes.
    pub encoded_bytes: usize,
    /// Host instructions before dead-code elimination.
    pub lir_insns: usize,
    /// LIR instructions eliminated before encoding.
    pub elided_insns: usize,
    /// Terminator metadata.
    pub exit: BlockExit,
    /// Constituent basic blocks.
    pub constituents: usize,
    /// Every constituent page with the FNV-1a hash of its bytes at
    /// formation time; a candidate is only instantiated after *all* of
    /// these revalidate against live memory.
    pub pages: Vec<(u64, u64)>,
    /// Loop-body copies stitched by unrolling.
    pub unroll: usize,
    /// Region-internal back-edges closed.
    pub back_edges: usize,
    /// Guest instructions in the looping portion.
    pub loop_guest_insns: usize,
    /// Eliminated-LIR share of the looping portion.
    pub loop_elided_insns: usize,
    /// Dirty loop-promoted slots (see [`Region::promoted`]); part of the
    /// translation's identity, so instantiations reconcile faults exactly
    /// like the original.
    pub promoted: Vec<(i32, Gpr)>,
    /// Per-rule idiom candidate counts of the original translation, carried
    /// so instantiated regions feed the rule miner like freshly-formed ones.
    pub idiom_candidates: [u32; crate::idiom::RULE_COUNT],
}

impl ReuseTemplate {
    /// Captures a formed region as a template.  `page_hashes` must cover
    /// exactly the region's constituent pages (base → content hash of the
    /// bytes the region was formed against).
    pub fn from_region(region: &Region, page_hashes: &[(u64, u64)]) -> Self {
        debug_assert_eq!(page_hashes.len(), region.pages.len());
        ReuseTemplate {
            guest_insns: region.guest_insns,
            code: Arc::clone(&region.code),
            encoded_bytes: region.encoded_bytes,
            lir_insns: region.lir_insns,
            elided_insns: region.elided_insns,
            exit: region.exit,
            constituents: region.constituents,
            pages: page_hashes.to_vec(),
            unroll: region.unroll,
            back_edges: region.back_edges,
            loop_guest_insns: region.loop_guest_insns,
            loop_elided_insns: region.loop_elided_insns,
            promoted: region.promoted.clone(),
            idiom_candidates: region.idiom_candidates,
        }
    }

    /// Instantiates the template as a fresh [`Region`] at the given entry,
    /// stamped with the current context generation and carrying fresh
    /// (unpatched) chain links.  The host code `Arc` is shared, not cloned.
    pub fn instantiate(&self, phys: u64, virt: u64, ctx_gen: u64) -> Region {
        Region {
            guest_phys: phys,
            guest_virt: virt,
            guest_insns: self.guest_insns,
            code: Arc::clone(&self.code),
            encoded_bytes: self.encoded_bytes,
            lir_insns: self.lir_insns,
            elided_insns: self.elided_insns,
            exit: self.exit,
            links: ChainLinks::default(),
            constituents: self.constituents,
            pages: self.pages.iter().map(|&(base, _)| base).collect(),
            ctx_gen,
            unroll: self.unroll,
            back_edges: self.back_edges,
            loop_guest_insns: self.loop_guest_insns,
            loop_elided_insns: self.loop_elided_insns,
            promoted: self.promoted.clone(),
            idiom_candidates: self.idiom_candidates,
        }
    }
}

/// One recorded refusal: the (page base, content hash) set a formation
/// attempt consumed while proving no region forms there.
type RefusalPages = Vec<(u64, u64)>;

/// Content-keyed translation reuse: formed machine code indexed by what it
/// was formed *from* (entry + knobs + page-content hashes), shareable
/// between runs via `Arc` so repeated executions of one kernel image pay
/// for region formation once.
#[derive(Debug, Default)]
pub struct ReuseCache {
    entries: RwLock<HashMap<ReuseKey, Vec<ReuseTemplate>>>,
    /// Negative knowledge: consumed page-hash sets a formation attempt
    /// proved to yield *no* region (trace too short, lowering bailed).  A
    /// validated refusal lets later runs of the same content skip the
    /// formation round-trip entirely — the outcome is already known.
    refusals: RwLock<HashMap<ReuseKey, Vec<RefusalPages>>>,
}

impl ReuseCache {
    /// Creates an empty reuse cache.
    pub fn new() -> Self {
        ReuseCache::default()
    }

    /// Publishes a template under `key`.  A template whose page set and
    /// hashes exactly match an existing candidate is dropped (the existing
    /// one already serves every image this one could).
    pub fn publish(&self, key: ReuseKey, template: ReuseTemplate) {
        let mut entries = self.entries.write().unwrap();
        let candidates = entries.entry(key).or_default();
        if candidates.iter().any(|c| c.pages == template.pages) {
            return;
        }
        candidates.push(template);
    }

    /// Records that forming at `key` against content whose consumed pages
    /// hashed to `pages` produced no region.  Identical page sets dedupe.
    pub fn publish_refusal(&self, key: ReuseKey, pages: Vec<(u64, u64)>) {
        let mut refusals = self.refusals.write().unwrap();
        let sets = refusals.entry(key).or_default();
        if sets.contains(&pages) {
            return;
        }
        sets.push(pages);
    }

    /// Whether a prior formation attempt at `key` is recorded to have
    /// refused on content that still matches — validated page by page with
    /// `page_matches(page_base, formation_hash)`.
    pub fn known_refusal(
        &self,
        key: ReuseKey,
        mut page_matches: impl FnMut(u64, u64) -> bool,
    ) -> bool {
        let refusals = self.refusals.read().unwrap();
        let Some(sets) = refusals.get(&key) else {
            return false;
        };
        sets.iter()
            .any(|s| s.iter().all(|&(base, hash)| page_matches(base, hash)))
    }

    /// Whether anything — a template or a recorded refusal — is published
    /// under `key`.  A cheap precheck (no page validation) used to skip
    /// redundant formation publishes when the outcome is likely already
    /// known at the install point.
    pub fn covers(&self, key: ReuseKey) -> bool {
        self.entries
            .read()
            .unwrap()
            .get(&key)
            .is_some_and(|c| !c.is_empty())
            || self
                .refusals
                .read()
                .unwrap()
                .get(&key)
                .is_some_and(|s| !s.is_empty())
    }

    /// Looks up a reusable template for `key`, validating candidates with
    /// `page_matches(page_base, formation_hash)` — which must hash the live
    /// bytes of `page_base` and compare.  The first fully validated
    /// candidate (in publication order, so lookups are deterministic) is
    /// returned as a clone.
    pub fn lookup(
        &self,
        key: ReuseKey,
        mut page_matches: impl FnMut(u64, u64) -> bool,
    ) -> Option<ReuseTemplate> {
        let entries = self.entries.read().unwrap();
        let candidates = entries.get(&key)?;
        candidates
            .iter()
            .find(|c| c.pages.iter().all(|&(base, hash)| page_matches(base, hash)))
            .cloned()
    }

    /// Number of distinct reuse keys published.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.read().unwrap().is_empty()
    }
}

// The tiered translation service shares regions, the code cache and the
// reuse cache across threads; keep the compiler holding that door open.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Region>();
    assert_send_sync::<CodeCache>();
    assert_send_sync::<ReuseCache>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn key(phys: u64, virt: u64) -> RegionKey {
        RegionKey { phys, virt }
    }

    fn block(at: u64, insns: usize) -> Region {
        block_with_exit(at, insns, BlockExit::Indirect)
    }

    fn block_with_exit(at: u64, insns: usize, exit: BlockExit) -> Region {
        Region {
            guest_phys: at,
            guest_virt: at,
            guest_insns: insns,
            code: Arc::new(vec![MachInsn::Ret]),
            encoded_bytes: insns * 40,
            lir_insns: insns * 12,
            elided_insns: 0,
            exit,
            links: ChainLinks::default(),
            constituents: 1,
            pages: Region::span_pages(at, insns),
            ctx_gen: 0,
            unroll: 1,
            back_edges: 0,
            loop_guest_insns: 0,
            loop_elided_insns: 0,
            promoted: Vec::new(),
            idiom_candidates: [0; crate::idiom::RULE_COUNT],
        }
    }

    fn multi(entry: u64, insns: usize, pages: Vec<u64>, ctx_gen: u64) -> Region {
        Region {
            constituents: pages.len().max(2),
            pages,
            ctx_gen,
            ..block_with_exit(entry, insns, BlockExit::Jump { target: entry })
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        assert!(c.get(key(0x1000, 0x1000), 0).is_none());
        c.insert(block(0x1000, 3));
        assert!(c.get(key(0x1000, 0x1000), 0).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn stale_generation_lookups_count_as_misses() {
        // The old `get_super` path bypassed the statistics entirely; the
        // unified lookup must record both the refusal and the later hit.
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(multi(0x1000, 8, vec![0x1000, 0x2000], 5));
        assert!(c.get(key(0x1000, 0x1000), 6).is_none(), "stale generation");
        assert_eq!(c.stats().misses, 1);
        assert!(c.get(key(0x1000, 0x1000), 5).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn hit_rate_with_no_lookups_is_one() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn full_invalidation_clears_everything() {
        let c = CodeCache::new(CacheIndex::GuestVirtual);
        c.insert(block(0x1000, 3));
        c.insert(block(0x2000, 5));
        c.insert(multi(0x3000, 8, vec![0x3000], 0));
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidated_full, 3);
    }

    #[test]
    fn page_invalidation_only_hits_overlapping_regions() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 4));
        c.insert(block(0x1FF8, 4)); // straddles into 0x2000 page
        c.insert(block(0x3000, 4));
        c.invalidate_phys_page(0x2000);
        assert!(c.get(key(0x1000, 0x1000), 0).is_some());
        assert!(
            c.get(key(0x1FF8, 0x1FF8), 0).is_none(),
            "straddling region invalidated"
        );
        assert!(c.get(key(0x3000, 0x3000), 0).is_some());
        assert_eq!(c.stats().invalidated_page, 1);
    }

    #[test]
    fn span_pages_cover_the_straddle() {
        assert_eq!(Region::span_pages(0x1FF8, 4), vec![0x1000, 0x2000]);
        assert_eq!(Region::span_pages(0x1000, 4), vec![0x1000]);
        assert_eq!(Region::span_pages(0x1000, 0), vec![0x1000]);
    }

    #[test]
    fn aggregate_statistics() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 2));
        c.insert(block(0x2000, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_guest_insns(), 5);
        assert_eq!(c.total_encoded_bytes(), 200);
    }

    #[test]
    fn chain_slots_match_terminator_targets() {
        let jump = block_with_exit(0x1000, 1, BlockExit::Jump { target: 0x2000 });
        assert_eq!(jump.chain_slot(0x2000), Some(0));
        assert_eq!(jump.chain_slot(0x3000), None);

        let branch = block_with_exit(
            0x1000,
            1,
            BlockExit::Branch {
                taken: 0x2000,
                fallthrough: 0x1004,
            },
        );
        assert_eq!(branch.chain_slot(0x2000), Some(0));
        assert_eq!(branch.chain_slot(0x1004), Some(1));
        assert_eq!(branch.chain_slot(0x5000), None);

        let seq = block_with_exit(0x1000, 2, BlockExit::Fallthrough { next: 0x1008 });
        assert_eq!(seq.chain_slot(0x1008), Some(0));

        let ind = block_with_exit(0x1000, 1, BlockExit::Indirect);
        assert_eq!(ind.chain_slot(0x1004), None);
    }

    #[test]
    fn links_follow_only_under_matching_stamps() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 1));
        a.set_link(0, 7, c.epoch(), &b);
        assert!(a.follow_link(0, 7, c.epoch()).is_some());
        assert!(a.follow_link(0, 8, c.epoch()).is_none(), "stale generation");
        assert!(a.follow_link(0, 7, c.epoch() + 1).is_none(), "stale epoch");
    }

    #[test]
    fn invalidating_the_target_kills_links_into_it() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 1));
        a.set_link(0, 0, c.epoch(), &b);
        drop(b);
        c.invalidate_phys_page(0x2000);
        // Both the weak upgrade and the epoch stamp now refuse the link.
        assert!(a.follow_link(0, 0, c.epoch()).is_none());
    }

    #[test]
    fn replacing_a_region_kills_links_into_the_old_one() {
        // Promotion path: a formed multi-constituent region replaces the
        // plain region at the same key; a link still pointing at the old
        // `Arc` dies with it, with no epoch bump required.
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let old = c.insert(block(0x2000, 1));
        a.set_link(0, 0, c.epoch(), &old);
        drop(old);
        let epoch_before = c.epoch();
        c.insert(multi(0x2000, 6, vec![0x2000], 0));
        assert_eq!(c.epoch(), epoch_before, "replacement is not invalidation");
        assert!(
            a.follow_link(0, 0, c.epoch()).is_none(),
            "the link into the replaced region must die"
        );
    }

    #[test]
    fn link_heat_accumulates_and_resets_on_repatch() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 1));
        assert_eq!(a.heat_up(0), 0, "no link, no heat");
        a.set_link(0, 0, c.epoch(), &b);
        assert_eq!(a.heat_up(0), 1);
        assert_eq!(a.heat_up(0), 2);
        assert_eq!(a.link_heat(0), 2);
        a.set_link(0, 0, c.epoch(), &b);
        assert_eq!(a.link_heat(0), 0, "re-patching restarts the profile");
    }

    #[test]
    fn multi_regions_are_gated_on_generation_and_keyed_by_entry() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(multi(0x1000, 8, vec![0x1000, 0x2000], 5));
        assert!(c.get(key(0x1000, 0x1000), 5).is_some());
        assert!(c.get(key(0x1000, 0x1000), 6).is_none(), "stale generation");
        assert!(
            c.get(key(0x2000, 0x2000), 5).is_none(),
            "interior page is not a key"
        );
        assert_eq!(c.multi_region_count(), 1);
    }

    #[test]
    fn virtual_aliases_of_one_entry_hold_separate_live_regions() {
        // Regression for the per-physical single slot: two virtual aliases
        // of one hot physical entry must not evict each other.
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = Region {
            guest_virt: 0x4000,
            ..multi(0x1000, 8, vec![0x1000], 3)
        };
        let b = Region {
            guest_virt: 0x8000,
            ..multi(0x1000, 8, vec![0x1000], 3)
        };
        c.insert(a);
        c.insert(b);
        assert_eq!(c.multi_region_count(), 2);
        assert!(c.get(key(0x1000, 0x4000), 3).is_some());
        assert!(c.get(key(0x1000, 0x8000), 3).is_some());
        // SMC on the shared physical page still kills both.
        c.invalidate_phys_page(0x1000);
        assert_eq!(c.multi_region_count(), 0);
    }

    #[test]
    fn stale_generation_sweep_evicts_only_old_multi_regions() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x9000, 2)); // plain regions are generation-immune
        c.insert(multi(0x1000, 8, vec![0x1000], 1));
        c.insert(multi(0x3000, 8, vec![0x3000], 2));
        c.insert(multi(0x5000, 8, vec![0x5000], 2));
        assert_eq!(c.multi_region_count(), 3);
        let epoch_before = c.epoch();
        let removed = c.evict_stale_regions(2);
        assert_eq!(removed, 1, "only the generation-1 region is stale");
        assert_eq!(c.multi_region_count(), 2);
        assert_eq!(c.len(), 3);
        assert!(c.get(key(0x3000, 0x3000), 2).is_some());
        assert!(c.get(key(0x1000, 0x1000), 1).is_none(), "evicted");
        assert!(
            c.get(key(0x9000, 0x9000), 2).is_some(),
            "plain regions survive the sweep"
        );
        assert_eq!(c.stats().evicted_stale_regions, 1);
        assert_eq!(
            c.epoch(),
            epoch_before,
            "sweeping stale regions must not retire current links"
        );
        // Sweeping again with the same generation is a no-op.
        assert_eq!(c.evict_stale_regions(2), 0);
    }

    #[test]
    fn looping_regions_are_gated_even_with_one_constituent() {
        // A self-loop closed at unroll 1 has a single constituent but still
        // embeds a virtual control-flow decision (the back-edge targets the
        // entry's virtual address): it must be generation-gated and swept
        // like any stitched trace.
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let looping = Region {
            back_edges: 1,
            loop_guest_insns: 3,
            ctx_gen: 4,
            ..block_with_exit(0x1000, 3, BlockExit::Jump { target: 0x1000 })
        };
        assert!(looping.gated());
        c.insert(looping);
        assert!(c.get(key(0x1000, 0x1000), 4).is_some());
        assert!(c.get(key(0x1000, 0x1000), 5).is_none(), "stale generation");
        assert_eq!(c.evict_stale_regions(5), 1, "stale looping region swept");
    }

    #[test]
    fn smc_on_any_constituent_page_kills_the_region() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(multi(0x1000, 8, vec![0x1000, 0x2000], 0));
        let epoch_before = c.epoch();
        c.invalidate_phys_page(0x2000); // interior page, not the entry page
        assert_eq!(c.multi_region_count(), 0);
        assert!(c.epoch() > epoch_before, "epoch bump retires held links");
        assert_eq!(c.stats().invalidated_page, 1);
    }

    #[test]
    fn region_profile_attributes_per_entry_mode() {
        let mut p = RegionProfile {
            guest_insns: 4,
            constituents: 2,
            ..RegionProfile::default()
        };
        p.record(EntryMode::Dispatched, 10);
        p.record(EntryMode::Chained, 3);
        p.record(EntryMode::Chained, 3);
        assert_eq!(p.executions(EntryMode::Dispatched), 1);
        assert_eq!(p.executions(EntryMode::Chained), 2);
        assert_eq!(p.cycles(EntryMode::Dispatched), 10);
        assert_eq!(p.cycles(EntryMode::Chained), 6);
        assert_eq!(p.total_executions(), 3);
        assert_eq!(p.total_cycles(), 16);
    }

    #[test]
    fn capacity_bound_evicts_oldest_unreferenced_region() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.set_capacity(None, Some(2));
        c.insert(block(0x1000, 1));
        c.insert(block(0x2000, 1));
        let epoch_before = c.epoch();
        c.insert(block(0x3000, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().capacity_evictions, 1);
        assert_eq!(c.stats().regions_live, 2);
        assert!(c.epoch() > epoch_before, "eviction retires held links");
        // FIFO among unreferenced regions: the oldest insert went first.
        assert!(c.peek(key(0x1000, 0x1000)).is_none(), "oldest evicted");
        assert!(c.peek(key(0x2000, 0x2000)).is_some());
        assert!(c.peek(key(0x3000, 0x3000)).is_some(), "new region admitted");
    }

    #[test]
    fn clock_sweep_gives_referenced_regions_a_second_chance() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.set_capacity(None, Some(2));
        c.insert(block(0x1000, 1));
        c.insert(block(0x2000, 1));
        // A dispatch-path hit marks 0x1000 referenced; 0x2000 stays cold.
        assert!(c.get(key(0x1000, 0x1000), 0).is_some());
        c.insert(block(0x3000, 1));
        assert!(c.peek(key(0x1000, 0x1000)).is_some(), "hot region survives");
        assert!(c.peek(key(0x2000, 0x2000)).is_none(), "cold region evicted");
        assert_eq!(c.stats().capacity_evictions, 1);
    }

    #[test]
    fn byte_capacity_bound_is_enforced() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        // block() gives each region insns * 40 encoded bytes.
        c.set_capacity(Some(100), None);
        c.insert(block(0x1000, 1)); // 40 bytes
        c.insert(block(0x2000, 1)); // 80 bytes
        c.insert(block(0x3000, 1)); // 120 bytes: over, evict one
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().bytes_live, 80);
        assert_eq!(c.stats().capacity_evictions, 1);
    }

    #[test]
    fn an_oversized_region_is_still_admitted() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.set_capacity(Some(50), None);
        c.insert(block(0x1000, 4)); // 160 bytes, alone over the bound
        assert_eq!(c.len(), 1, "sole region is exempt from its own sweep");
        assert!(c.peek(key(0x1000, 0x1000)).is_some());
        c.insert(block(0x2000, 1));
        // The oversized one is now evictable in favour of the newcomer.
        assert!(c.peek(key(0x1000, 0x1000)).is_none());
        assert!(c.peek(key(0x2000, 0x2000)).is_some());
    }

    #[test]
    fn invalidation_leaves_no_stale_ring_entries_to_evict() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        c.set_capacity(None, Some(2));
        c.insert(block(0x1000, 1));
        c.insert(block(0x2000, 1));
        c.invalidate_phys_page(0x1000);
        assert_eq!(c.len(), 1);
        c.insert(block(0x3000, 1));
        // Within the bound again: nothing must be charged as evicted.
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().capacity_evictions, 0);
    }

    #[test]
    fn unbounded_cache_never_capacity_evicts() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        for i in 0..64 {
            c.insert(block(0x1000 + i * 0x100, 1));
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.stats().capacity_evictions, 0);
        assert_eq!(c.stats().regions_live, 64);
    }

    #[test]
    fn epoch_bumps_kill_self_links_held_by_the_dispatcher() {
        // A region chained to itself stays strongly referenced by the
        // dispatcher across its own invalidation; the epoch stamp is what
        // breaks the loop.
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            1,
            BlockExit::Jump { target: 0x1000 },
        ));
        let epoch_at_patch = c.epoch();
        a.set_link(0, 0, epoch_at_patch, &a);
        assert!(a.follow_link(0, 0, epoch_at_patch).is_some());
        c.invalidate_phys_page(0x1000);
        assert!(
            a.follow_link(0, 0, c.epoch()).is_none(),
            "self-link must die on invalidation even though the Arc lives"
        );
    }

    #[test]
    fn concurrent_mutation_is_sound() {
        // Hammer the sharded index from several threads at once: inserts,
        // dispatch-path lookups, page invalidations and a capacity bound
        // tight enough to keep the clock hand sweeping.  The assertions are
        // (a) no deadlock/panic, (b) the books still balance at the end.
        use std::sync::atomic::AtomicU64 as Counter;
        let c = Arc::new(CodeCache::new(CacheIndex::GuestPhysical));
        c.set_capacity(None, Some(32));
        let inserted = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            let inserted = Arc::clone(&inserted);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let at = 0x1000 + ((t * 200 + i) % 96) * 0x100;
                    c.insert(block(at, 1));
                    inserted.fetch_add(1, Ordering::Relaxed);
                    c.get(key(at, at), 0);
                    if i % 16 == 0 {
                        c.invalidate_phys_page(at & !0xFFF);
                    }
                    if i % 32 == 0 {
                        c.evict_stale_regions(0);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(inserted.load(Ordering::Relaxed), 800);
        assert!(c.len() <= 33, "bound holds modulo one in-flight oversize");
        assert_eq!(s.regions_live, c.len() as u64);
        assert!(s.hits + s.misses == 800, "every lookup was counted");
    }

    #[test]
    fn reuse_template_round_trips_through_content_validation() {
        let reuse = ReuseCache::new();
        let region = multi(0x1000, 8, vec![0x1000, 0x2000], 3);
        let hashes = [(0x1000u64, 0xAAAAu64), (0x2000, 0xBBBB)];
        let knobs = pack_knobs(false, true, true, true, true, 4, 256, 0);
        let key = ReuseKey {
            phys: 0x1000,
            virt: 0x1000,
            knobs,
            entry_page_hash: 0xAAAA,
        };
        reuse.publish(key, ReuseTemplate::from_region(&region, &hashes));
        assert_eq!(reuse.len(), 1);
        // All pages validate: the template is served.
        let got = reuse
            .lookup(key, |base, hash| {
                hashes.iter().any(|&(b, h)| b == base && h == hash)
            })
            .expect("content-valid template");
        let inst = got.instantiate(0x1000, 0x1000, 7);
        assert_eq!(inst.ctx_gen, 7);
        assert_eq!(inst.pages, vec![0x1000, 0x2000]);
        assert_eq!(inst.constituents, region.constituents);
        assert!(Arc::ptr_eq(&inst.code, &region.code), "code is shared");
        // A modified interior page defeats reuse.
        assert!(
            reuse
                .lookup(key, |base, hash| base == 0x1000 && hash == 0xAAAA)
                .is_none(),
            "a stale interior page must invalidate the candidate"
        );
        // A different knob set is a different key entirely.
        let other = ReuseKey {
            knobs: pack_knobs(false, false, true, true, true, 4, 256, 0),
            ..key
        };
        assert!(reuse.lookup(other, |_, _| true).is_none());
    }

    #[test]
    fn reuse_publish_dedupes_identical_page_sets() {
        let reuse = ReuseCache::new();
        let region = block(0x1000, 2);
        let hashes = [(0x1000u64, 0x1234u64)];
        let key = ReuseKey {
            phys: 0x1000,
            virt: 0x1000,
            knobs: 0,
            entry_page_hash: 0x1234,
        };
        reuse.publish(key, ReuseTemplate::from_region(&region, &hashes));
        reuse.publish(key, ReuseTemplate::from_region(&region, &hashes));
        let entries = reuse.entries.read().unwrap();
        assert_eq!(entries.get(&key).unwrap().len(), 1, "deduped");
    }

    #[test]
    fn reuse_refusals_validate_content_and_dedupe() {
        let reuse = ReuseCache::new();
        let key = ReuseKey {
            phys: 0x1000,
            virt: 0x1000,
            knobs: 0,
            entry_page_hash: 0x1234,
        };
        assert!(!reuse.covers(key));
        let pages = vec![(0x1000u64, 0x1234u64), (0x2000, 0x5678)];
        reuse.publish_refusal(key, pages.clone());
        reuse.publish_refusal(key, pages.clone());
        assert_eq!(reuse.refusals.read().unwrap()[&key].len(), 1, "deduped");
        // The refusal covers the key (publish precheck) and validates only
        // while every recorded page still hashes the same.
        assert!(reuse.covers(key));
        assert!(reuse.known_refusal(key, |base, hash| {
            pages.iter().any(|&(b, h)| b == base && h == hash)
        }));
        assert!(
            !reuse.known_refusal(key, |base, hash| base == 0x1000 && hash == 0x1234),
            "a changed interior page must void the refusal"
        );
        // Refusals never surface as installable templates.
        assert!(reuse.lookup(key, |_, _| true).is_none());
    }

    #[test]
    fn knob_packing_distinguishes_every_field() {
        let base = pack_knobs(false, true, true, true, true, 4, 256, 0);
        assert_ne!(base, pack_knobs(true, true, true, true, true, 4, 256, 0));
        assert_ne!(base, pack_knobs(false, false, true, true, true, 4, 256, 0));
        assert_ne!(base, pack_knobs(false, true, false, true, true, 4, 256, 0));
        assert_ne!(base, pack_knobs(false, true, true, false, true, 4, 256, 0));
        assert_ne!(base, pack_knobs(false, true, true, true, true, 8, 256, 0));
        assert_ne!(base, pack_knobs(false, true, true, true, true, 4, 128, 0));
        assert_ne!(base, pack_knobs(false, true, true, true, false, 4, 256, 0));
    }

    #[test]
    fn knob_packing_keys_on_idiom_table_only_when_idioms_run() {
        let with =
            |idioms: bool, table: u64| pack_knobs(false, true, true, true, idioms, 4, 256, table);
        // Different rule tables generate different code, so they must land
        // in different reuse keys...
        assert_ne!(with(true, 0xDEAD_BEEF), with(true, 0x1234_5678));
        assert_eq!(with(true, 0xDEAD_BEEF) >> 32, 0xDEAD_BEEF);
        // ...but with the idiom layer off the table is inert, and every
        // table value must collapse onto the same key so idiom-off
        // translations stay shareable.
        assert_eq!(with(false, 0xDEAD_BEEF), with(false, 0x1234_5678));
        assert_eq!(with(false, 0xDEAD_BEEF), with(false, 0));
    }

    #[test]
    fn fnv_hash_is_content_sensitive() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
