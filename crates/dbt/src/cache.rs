//! Translated-code cache and direct block chaining.
//!
//! Captive indexes translations by guest *physical* address so they survive
//! guest page-table changes and are shared between different virtual mappings
//! of the same physical page; the QEMU-style baseline indexes by guest
//! *virtual* address and must invalidate everything whenever the guest
//! changes its page tables (Section 2.6).  Both policies are provided here so
//! the difference is a configuration, not a reimplementation.
//!
//! # Direct block chaining
//!
//! Each [`TranslatedBlock`] carries terminator metadata ([`BlockExit`])
//! computed at translation time, plus up to two lazily patched successor
//! links (slot 0 = the jump/taken/sequential target, slot 1 = the
//! conditional fallthrough).  A link records:
//!
//! * a [`Weak`] reference to the successor block — invalidating a block
//!   drops the cache's strong reference, so every chain link pointing at it
//!   dies automatically, with no scan over predecessor blocks;
//! * the *context generation* (owned by the hypervisor, bumped on guest
//!   TLBI / `TTBR0` / `SCTLR` writes — anything that can change the
//!   VA→PA mapping a link's target address was resolved under);
//! * the *cache epoch* (owned by this cache, bumped whenever an
//!   invalidation removes blocks — this catches the case where the
//!   dispatcher still holds a strong reference to an invalidated block, so
//!   the `Weak` alone would keep a stale self-link alive).
//!
//! A link is only followed while both stamps match the current values; a
//! stale link simply falls back to the dispatcher slow path, which re-resolves
//! and re-patches it.
//!
//! Lookup stats are interior-mutable so the dispatcher can probe the cache
//! through a shared reference while holding `Arc`s to blocks it is chaining
//! between.
//!
//! # Superblocks
//!
//! Chained blocks still bounce through the interpreter's inner loop between
//! every block.  To amortise that per-block entry/exit overhead over hot
//! paths, the hypervisor *stitches* chained sequences into **superblocks**:
//! single translations covering several guest basic blocks, with internal
//! fallthroughs ([`hvm::MachInsn::TraceEdge`] markers) where chained
//! transfers used to be, and side-exit stubs that restore precise guest
//! PC/ELR state on the off-trace leg of every interior conditional.
//!
//! **Formation policy** (profile-guided, implemented by the Captive
//! dispatcher over this cache):
//!
//! * every chain link carries a *heat* counter, bumped on each chained
//!   transfer through it; when a link's heat crosses the hot threshold
//!   (`CaptiveConfig::superblock_threshold`, default 16), a superblock is
//!   formed starting at the link's target;
//! * the trace follows direct-jump and fallthrough terminators, and for
//!   conditional branches the leg whose chain link is hotter (falling back
//!   to the backward-branch heuristic), stopping at indirect exits,
//!   already-visited constituent starts (loop closure), untranslatable
//!   target pages, and a length cap (`CaptiveConfig::superblock_max_insns`,
//!   default 256 guest instructions / 32 constituents);
//! * traces with fewer than two constituents are not worth a superblock and
//!   are discarded.
//!
//! **Storage and dispatch.** Superblocks live here alongside plain blocks,
//! in a second map keyed by the guest physical address of their entry, each
//! carrying a [`SuperMeta`] record (constituent pages, formation context
//! generation, constituent count).  The dispatcher prefers a valid
//! superblock over the plain block at the same key, and superblocks both
//! chain and are chained to through the ordinary link machinery.
//!
//! **Invalidation.** A superblock stitches a *virtual* control-flow path, so
//! it is only dispatched while the current context generation matches its
//! formation stamp — any guest `TLBI`/`TTBR0`/`SCTLR` write retires it
//! wholesale (together with every chain link into it).  Self-modifying code
//! on *any* constituent page — not just the entry page — discards the
//! superblock via [`CodeCache::invalidate_phys_page`], which also bumps the
//! epoch so dispatcher-held references die.

use hvm::MachInsn;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// How blocks are keyed in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheIndex {
    /// Key is the guest physical address of the block's first instruction.
    GuestPhysical,
    /// Key is the guest virtual address of the block's first instruction.
    GuestVirtual,
}

/// Where control goes when a translated block exits — terminator metadata
/// recorded at translation time and consumed by the chaining dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockExit {
    /// Successor unknown at translation time: register-indirect branch,
    /// exception, `ERET`, or a system-register write that may change
    /// translation state.  Never chained.
    #[default]
    Indirect,
    /// Unconditional direct branch to a fixed guest virtual address.
    Jump {
        /// Branch target.
        target: u64,
    },
    /// Conditional direct branch with both destinations fixed.
    Branch {
        /// Taken target.
        taken: u64,
        /// Fall-through address.
        fallthrough: u64,
    },
    /// The block ended at the instruction limit or a page boundary and falls
    /// through sequentially.
    Fallthrough {
        /// Address of the next sequential instruction.
        next: u64,
    },
}

/// A resolved successor link: valid while both stamps match the current
/// translation context and the target block is still cached.
#[derive(Debug, Clone)]
struct ChainLink {
    ctx_gen: u64,
    cache_epoch: u64,
    /// Transfers that followed this link (profile input for superblock
    /// formation; reset whenever the link is re-patched).
    heat: u64,
    to: Weak<TranslatedBlock>,
}

/// The lazily patched successor links of a block.
#[derive(Debug, Default)]
pub struct ChainLinks {
    slots: [RefCell<Option<ChainLink>>; 2],
}

/// Metadata attached to a superblock (a translation stitched from several
/// guest basic blocks along a hot chain path).
#[derive(Debug, Clone)]
pub struct SuperMeta {
    /// Guest physical pages the constituent blocks occupy; self-modifying
    /// code on any of them kills the superblock.
    pub pages: Vec<u64>,
    /// Context generation the trace's VA→PA stitching was resolved under;
    /// the superblock is only dispatched while this matches.
    pub ctx_gen: u64,
    /// Number of constituent basic blocks stitched together.
    pub constituents: usize,
}

/// One translated guest basic block.
#[derive(Debug)]
pub struct TranslatedBlock {
    /// Key under which the block is cached (physical or virtual address,
    /// depending on the cache's indexing policy).
    pub key: u64,
    /// Guest physical address of the first instruction.
    pub guest_phys: u64,
    /// Guest virtual address of the first instruction.
    pub guest_virt: u64,
    /// Number of guest instructions translated.
    pub guest_insns: usize,
    /// Host code (interpreted by the HVM64 machine).
    pub code: Arc<Vec<MachInsn>>,
    /// Size of the byte-encoded host code.
    pub encoded_bytes: usize,
    /// Host instructions before dead-code elimination (diagnostic).
    pub lir_insns: usize,
    /// LIR instructions eliminated before encoding (optimiser deletions plus
    /// allocator dead-marks); multiplied by executions it yields the dynamic
    /// instructions-saved counters.
    pub elided_insns: usize,
    /// Terminator metadata for direct chaining.
    pub exit: BlockExit,
    /// Successor links, patched lazily by the dispatcher.
    pub links: ChainLinks,
    /// Present when this translation is a superblock.
    pub super_meta: Option<SuperMeta>,
}

impl TranslatedBlock {
    /// Guest bytes covered by the block (fixed 4-byte instructions).
    pub fn guest_bytes(&self) -> u64 {
        self.guest_insns as u64 * 4
    }

    /// Index of the chain slot whose guest target is `next_va`, if the
    /// terminator makes that successor a chaining candidate.
    pub fn chain_slot(&self, next_va: u64) -> Option<usize> {
        match self.exit {
            BlockExit::Jump { target } if next_va == target => Some(0),
            BlockExit::Fallthrough { next } if next_va == next => Some(0),
            BlockExit::Branch { taken, .. } if next_va == taken => Some(0),
            BlockExit::Branch { fallthrough, .. } if next_va == fallthrough => Some(1),
            _ => None,
        }
    }

    /// Follows the link in `slot` if it was patched under the current
    /// context generation and cache epoch and its target is still cached.
    pub fn follow_link(
        &self,
        slot: usize,
        ctx_gen: u64,
        cache_epoch: u64,
    ) -> Option<Arc<TranslatedBlock>> {
        let borrow = self.links.slots[slot].borrow();
        let link = borrow.as_ref()?;
        if link.ctx_gen == ctx_gen && link.cache_epoch == cache_epoch {
            link.to.upgrade()
        } else {
            None
        }
    }

    /// Patches the link in `slot` to point at `to`, stamped with the context
    /// generation and cache epoch it was resolved under.  Resets the link's
    /// heat: the profile restarts for the new target.
    pub fn set_link(&self, slot: usize, ctx_gen: u64, cache_epoch: u64, to: &Arc<TranslatedBlock>) {
        *self.links.slots[slot].borrow_mut() = Some(ChainLink {
            ctx_gen,
            cache_epoch,
            heat: 0,
            to: Arc::downgrade(to),
        });
    }

    /// Bumps the transfer counter of the link in `slot`, returning the new
    /// heat (0 when the slot holds no link).
    pub fn heat_up(&self, slot: usize) -> u64 {
        match self.links.slots[slot].borrow_mut().as_mut() {
            Some(link) => {
                link.heat += 1;
                link.heat
            }
            None => 0,
        }
    }

    /// Current heat of the link in `slot` (0 when unpatched).
    pub fn link_heat(&self, slot: usize) -> u64 {
        self.links.slots[slot]
            .borrow()
            .as_ref()
            .map_or(0, |l| l.heat)
    }

    /// Guest physical pages this translation's guest code occupies (the
    /// entry block's span for plain blocks, every constituent page for
    /// superblocks).
    pub fn code_pages(&self) -> Vec<u64> {
        if let Some(meta) = &self.super_meta {
            return meta.pages.clone();
        }
        let start = self.guest_phys & !0xFFF;
        let end = self.guest_phys + self.guest_bytes();
        (start..end).step_by(4096).map(|p| p & !0xFFF).collect()
    }
}

/// Statistics kept by the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups that found a block.
    pub hits: u64,
    /// Lookups that missed (a translation was required).
    pub misses: u64,
    /// Blocks discarded by full invalidations.
    pub invalidated_full: u64,
    /// Blocks discarded by per-page invalidations (self-modifying code).
    pub invalidated_page: u64,
    /// Stale-generation superblocks evicted by the context-generation sweep.
    pub evicted_stale_supers: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in [0, 1]; 1.0 when there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The translation cache.
#[derive(Debug)]
pub struct CodeCache {
    index: CacheIndex,
    blocks: HashMap<u64, Arc<TranslatedBlock>>,
    /// Superblocks, keyed by the guest physical address of their entry block
    /// (dispatched preferentially over the plain block at the same key).
    supers: HashMap<u64, Arc<TranslatedBlock>>,
    /// Bumped whenever an invalidation removes blocks; chain links stamped
    /// with an older epoch are dead.
    epoch: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidated_full: Cell<u64>,
    invalidated_page: Cell<u64>,
    evicted_stale_supers: Cell<u64>,
}

impl CodeCache {
    /// Creates an empty cache with the given indexing policy.
    pub fn new(index: CacheIndex) -> Self {
        CodeCache {
            index,
            blocks: HashMap::new(),
            supers: HashMap::new(),
            epoch: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
            invalidated_full: Cell::new(0),
            invalidated_page: Cell::new(0),
            evicted_stale_supers: Cell::new(0),
        }
    }

    /// The indexing policy in force.
    pub fn index_kind(&self) -> CacheIndex {
        self.index
    }

    /// Current invalidation epoch (stamped into chain links at patch time).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Looks up a block by its key.  Takes `&self` so the chaining
    /// dispatcher can probe while holding shared references into the cache;
    /// hit/miss accounting is interior-mutable.
    pub fn get(&self, key: u64) -> Option<Arc<TranslatedBlock>> {
        match self.blocks.get(&key) {
            Some(b) => {
                self.hits.set(self.hits.get() + 1);
                Some(Arc::clone(b))
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Inserts a block under its key.
    // The dispatcher is single-threaded per vCPU by design (the paper's
    // execution engine runs one guest core per host core); `Arc`/`Weak` are
    // used for the shared-ownership semantics of chain links, not for
    // cross-thread sharing, so `RefCell` link slots are fine.
    #[allow(clippy::arc_with_non_send_sync)]
    pub fn insert(&mut self, block: TranslatedBlock) -> Arc<TranslatedBlock> {
        let arc = Arc::new(block);
        self.blocks.insert(arc.key, Arc::clone(&arc));
        arc
    }

    /// Looks up a block without touching the hit/miss statistics (used by
    /// the superblock former to consult link heats).
    pub fn peek(&self, key: u64) -> Option<Arc<TranslatedBlock>> {
        self.blocks.get(&key).map(Arc::clone)
    }

    /// Inserts a superblock under its entry block's guest physical address,
    /// replacing any previous (e.g. stale-generation) superblock there.
    #[allow(clippy::arc_with_non_send_sync)]
    pub fn insert_super(&mut self, block: TranslatedBlock) -> Arc<TranslatedBlock> {
        debug_assert!(block.super_meta.is_some(), "insert_super needs SuperMeta");
        let arc = Arc::new(block);
        self.supers.insert(arc.guest_phys, Arc::clone(&arc));
        arc
    }

    /// Returns the superblock entered at `guest_phys` if one exists and its
    /// formation context generation is still current.
    pub fn get_super(&self, guest_phys: u64, ctx_gen: u64) -> Option<Arc<TranslatedBlock>> {
        let sb = self.supers.get(&guest_phys)?;
        let meta = sb.super_meta.as_ref()?;
        if meta.ctx_gen == ctx_gen {
            Some(Arc::clone(sb))
        } else {
            None
        }
    }

    /// Number of cached superblocks (stale-generation ones included until
    /// they are replaced, invalidated or swept).
    pub fn super_count(&self) -> usize {
        self.supers.len()
    }

    /// Evicts every superblock whose formation context generation is not
    /// `ctx_gen`, returning how many were dropped.  The dispatcher calls
    /// this once per observed generation bump: stale superblocks can never
    /// be dispatched again (the generation gate in [`CodeCache::get_super`]
    /// refuses them), so keeping them only leaks memory on TLBI-heavy
    /// guests.  Dropping the `Arc`s also kills chain links into them; no
    /// epoch bump is needed because generation-stamped links are already
    /// dead.
    pub fn evict_stale_supers(&mut self, ctx_gen: u64) -> usize {
        let before = self.supers.len();
        self.supers
            .retain(|_, sb| sb.super_meta.as_ref().is_some_and(|m| m.ctx_gen == ctx_gen));
        let removed = before - self.supers.len();
        self.evicted_stale_supers
            .set(self.evicted_stale_supers.get() + removed as u64);
        removed
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidated_full: self.invalidated_full.get(),
            invalidated_page: self.invalidated_page.get(),
            evicted_stale_supers: self.evicted_stale_supers.get(),
        }
    }

    /// Discards every translation (the QEMU-style response to a guest
    /// page-table change when indexing by virtual address).
    pub fn invalidate_all(&mut self) {
        self.invalidated_full
            .set(self.invalidated_full.get() + (self.blocks.len() + self.supers.len()) as u64);
        self.blocks.clear();
        self.supers.clear();
        self.epoch.set(self.epoch.get() + 1);
    }

    /// Discards translations whose guest code lies in the given guest
    /// physical page (Captive's response to a detected self-modifying write).
    /// Dropping the cache's `Arc`s kills chain links into the page; the epoch
    /// bump additionally kills links *from* blocks the dispatcher still holds.
    pub fn invalidate_phys_page(&mut self, page_base: u64) {
        let page_end = page_base + 4096;
        let before = self.blocks.len() + self.supers.len();
        self.blocks.retain(|_, b| {
            let start = b.guest_phys;
            let end = b.guest_phys + b.guest_bytes();
            end <= page_base || start >= page_end
        });
        // A superblock dies when *any* constituent page is written, not just
        // the page its entry lives in.
        self.supers.retain(|_, sb| match &sb.super_meta {
            Some(m) => !m.pages.contains(&page_base),
            None => true,
        });
        let removed = (before - self.blocks.len() - self.supers.len()) as u64;
        if removed > 0 {
            self.invalidated_page
                .set(self.invalidated_page.get() + removed);
            self.epoch.set(self.epoch.get() + 1);
        }
    }

    /// Total bytes of encoded host code currently cached (superblocks
    /// included).
    pub fn total_encoded_bytes(&self) -> usize {
        self.blocks
            .values()
            .chain(self.supers.values())
            .map(|b| b.encoded_bytes)
            .sum()
    }

    /// Total guest instructions covered by cached translations.
    pub fn total_guest_insns(&self) -> usize {
        self.blocks.values().map(|b| b.guest_insns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(key: u64, phys: u64, insns: usize) -> TranslatedBlock {
        block_with_exit(key, phys, insns, BlockExit::Indirect)
    }

    fn block_with_exit(key: u64, phys: u64, insns: usize, exit: BlockExit) -> TranslatedBlock {
        TranslatedBlock {
            key,
            guest_phys: phys,
            guest_virt: key,
            guest_insns: insns,
            code: Arc::new(vec![MachInsn::Ret]),
            encoded_bytes: insns * 40,
            lir_insns: insns * 12,
            elided_insns: 0,
            exit,
            links: ChainLinks::default(),
            super_meta: None,
        }
    }

    fn superblock(entry: u64, insns: usize, pages: Vec<u64>, ctx_gen: u64) -> TranslatedBlock {
        TranslatedBlock {
            super_meta: Some(SuperMeta {
                constituents: pages.len().max(2),
                pages,
                ctx_gen,
            }),
            ..block_with_exit(entry, entry, insns, BlockExit::Jump { target: entry })
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        assert!(c.get(0x1000).is_none());
        c.insert(block(0x1000, 0x1000, 3));
        assert!(c.get(0x1000).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn hit_rate_with_no_lookups_is_one() {
        let c = CodeCache::new(CacheIndex::GuestPhysical);
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn full_invalidation_clears_everything() {
        let mut c = CodeCache::new(CacheIndex::GuestVirtual);
        c.insert(block(0x1000, 0x1000, 3));
        c.insert(block(0x2000, 0x2000, 5));
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidated_full, 2);
    }

    #[test]
    fn page_invalidation_only_hits_overlapping_blocks() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 0x1000, 4));
        c.insert(block(0x1FF8, 0x1FF8, 4)); // straddles into 0x2000 page
        c.insert(block(0x3000, 0x3000, 4));
        c.invalidate_phys_page(0x2000);
        assert!(c.get(0x1000).is_some());
        assert!(c.get(0x1FF8).is_none(), "straddling block invalidated");
        assert!(c.get(0x3000).is_some());
        assert_eq!(c.stats().invalidated_page, 1);
    }

    #[test]
    fn aggregate_statistics() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 0x1000, 2));
        c.insert(block(0x2000, 0x2000, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_guest_insns(), 5);
        assert_eq!(c.total_encoded_bytes(), 200);
    }

    #[test]
    fn chain_slots_match_terminator_targets() {
        let jump = block_with_exit(0x1000, 0x1000, 1, BlockExit::Jump { target: 0x2000 });
        assert_eq!(jump.chain_slot(0x2000), Some(0));
        assert_eq!(jump.chain_slot(0x3000), None);

        let branch = block_with_exit(
            0x1000,
            0x1000,
            1,
            BlockExit::Branch {
                taken: 0x2000,
                fallthrough: 0x1004,
            },
        );
        assert_eq!(branch.chain_slot(0x2000), Some(0));
        assert_eq!(branch.chain_slot(0x1004), Some(1));
        assert_eq!(branch.chain_slot(0x5000), None);

        let seq = block_with_exit(0x1000, 0x1000, 2, BlockExit::Fallthrough { next: 0x1008 });
        assert_eq!(seq.chain_slot(0x1008), Some(0));

        let ind = block_with_exit(0x1000, 0x1000, 1, BlockExit::Indirect);
        assert_eq!(ind.chain_slot(0x1004), None);
    }

    #[test]
    fn links_follow_only_under_matching_stamps() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 0x2000, 1));
        a.set_link(0, 7, c.epoch(), &b);
        assert!(a.follow_link(0, 7, c.epoch()).is_some());
        assert!(a.follow_link(0, 8, c.epoch()).is_none(), "stale generation");
        assert!(a.follow_link(0, 7, c.epoch() + 1).is_none(), "stale epoch");
    }

    #[test]
    fn invalidating_the_target_kills_links_into_it() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 0x2000, 1));
        a.set_link(0, 0, c.epoch(), &b);
        drop(b);
        c.invalidate_phys_page(0x2000);
        // Both the weak upgrade and the epoch stamp now refuse the link.
        assert!(a.follow_link(0, 0, c.epoch()).is_none());
    }

    #[test]
    fn link_heat_accumulates_and_resets_on_repatch() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            0x1000,
            1,
            BlockExit::Jump { target: 0x2000 },
        ));
        let b = c.insert(block(0x2000, 0x2000, 1));
        assert_eq!(a.heat_up(0), 0, "no link, no heat");
        a.set_link(0, 0, c.epoch(), &b);
        assert_eq!(a.heat_up(0), 1);
        assert_eq!(a.heat_up(0), 2);
        assert_eq!(a.link_heat(0), 2);
        a.set_link(0, 0, c.epoch(), &b);
        assert_eq!(a.link_heat(0), 0, "re-patching restarts the profile");
    }

    #[test]
    fn superblocks_are_keyed_by_entry_and_gated_on_generation() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert_super(superblock(0x1000, 8, vec![0x1000, 0x2000], 5));
        assert!(c.get_super(0x1000, 5).is_some());
        assert!(c.get_super(0x1000, 6).is_none(), "stale generation");
        assert!(
            c.get_super(0x2000, 5).is_none(),
            "interior page is not a key"
        );
        assert_eq!(c.super_count(), 1);
    }

    #[test]
    fn stale_generation_sweep_evicts_only_old_superblocks() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert_super(superblock(0x1000, 8, vec![0x1000], 1));
        c.insert_super(superblock(0x3000, 8, vec![0x3000], 2));
        c.insert_super(superblock(0x5000, 8, vec![0x5000], 2));
        assert_eq!(c.super_count(), 3);
        let epoch_before = c.epoch();
        let removed = c.evict_stale_supers(2);
        assert_eq!(removed, 1, "only the generation-1 superblock is stale");
        assert_eq!(c.super_count(), 2);
        assert!(c.get_super(0x3000, 2).is_some());
        assert!(c.get_super(0x1000, 1).is_none(), "evicted");
        assert_eq!(c.stats().evicted_stale_supers, 1);
        assert_eq!(
            c.epoch(),
            epoch_before,
            "sweeping stale superblocks must not retire current links"
        );
        // Sweeping again with the same generation is a no-op.
        assert_eq!(c.evict_stale_supers(2), 0);
    }

    #[test]
    fn smc_on_any_constituent_page_kills_the_superblock() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert_super(superblock(0x1000, 8, vec![0x1000, 0x2000], 0));
        let epoch_before = c.epoch();
        c.invalidate_phys_page(0x2000); // interior page, not the entry page
        assert_eq!(c.super_count(), 0);
        assert!(c.epoch() > epoch_before, "epoch bump retires held links");
        assert_eq!(c.stats().invalidated_page, 1);
    }

    #[test]
    fn full_invalidation_clears_superblocks_too() {
        let mut c = CodeCache::new(CacheIndex::GuestVirtual);
        c.insert(block(0x1000, 0x1000, 3));
        c.insert_super(superblock(0x1000, 8, vec![0x1000], 0));
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.super_count(), 0);
        assert_eq!(c.stats().invalidated_full, 2);
    }

    #[test]
    fn code_pages_cover_span_or_constituents() {
        let plain = block_with_exit(0x1FF8, 0x1FF8, 4, BlockExit::Indirect);
        assert_eq!(plain.code_pages(), vec![0x1000, 0x2000]);
        let sb = superblock(0x1000, 8, vec![0x1000, 0x5000], 0);
        assert_eq!(sb.code_pages(), vec![0x1000, 0x5000]);
    }

    #[test]
    fn epoch_bumps_kill_self_links_held_by_the_dispatcher() {
        // A block chained to itself stays strongly referenced by the
        // dispatcher across its own invalidation; the epoch stamp is what
        // breaks the loop.
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        let a = c.insert(block_with_exit(
            0x1000,
            0x1000,
            1,
            BlockExit::Jump { target: 0x1000 },
        ));
        let epoch_at_patch = c.epoch();
        a.set_link(0, 0, epoch_at_patch, &a);
        assert!(a.follow_link(0, 0, epoch_at_patch).is_some());
        c.invalidate_phys_page(0x1000);
        assert!(
            a.follow_link(0, 0, c.epoch()).is_none(),
            "self-link must die on invalidation even though the Arc lives"
        );
    }
}
