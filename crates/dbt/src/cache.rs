//! Translated-code cache.
//!
//! Captive indexes translations by guest *physical* address so they survive
//! guest page-table changes and are shared between different virtual mappings
//! of the same physical page; the QEMU-style baseline indexes by guest
//! *virtual* address and must invalidate everything whenever the guest
//! changes its page tables (Section 2.6).  Both policies are provided here so
//! the difference is a configuration, not a reimplementation.

use hvm::MachInsn;
use std::collections::HashMap;
use std::sync::Arc;

/// How blocks are keyed in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheIndex {
    /// Key is the guest physical address of the block's first instruction.
    GuestPhysical,
    /// Key is the guest virtual address of the block's first instruction.
    GuestVirtual,
}

/// One translated guest basic block.
#[derive(Debug)]
pub struct TranslatedBlock {
    /// Key under which the block is cached (physical or virtual address,
    /// depending on the cache's indexing policy).
    pub key: u64,
    /// Guest physical address of the first instruction.
    pub guest_phys: u64,
    /// Guest virtual address of the first instruction.
    pub guest_virt: u64,
    /// Number of guest instructions translated.
    pub guest_insns: usize,
    /// Host code (interpreted by the HVM64 machine).
    pub code: Arc<Vec<MachInsn>>,
    /// Size of the byte-encoded host code.
    pub encoded_bytes: usize,
    /// Host instructions before dead-code elimination (diagnostic).
    pub lir_insns: usize,
}

impl TranslatedBlock {
    /// Guest bytes covered by the block (fixed 4-byte instructions).
    pub fn guest_bytes(&self) -> u64 {
        self.guest_insns as u64 * 4
    }
}

/// Statistics kept by the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups that found a block.
    pub hits: u64,
    /// Lookups that missed (a translation was required).
    pub misses: u64,
    /// Blocks discarded by full invalidations.
    pub invalidated_full: u64,
    /// Blocks discarded by per-page invalidations (self-modifying code).
    pub invalidated_page: u64,
}

/// The translation cache.
#[derive(Debug)]
pub struct CodeCache {
    index: CacheIndex,
    blocks: HashMap<u64, Arc<TranslatedBlock>>,
    stats: CacheStats,
}

impl CodeCache {
    /// Creates an empty cache with the given indexing policy.
    pub fn new(index: CacheIndex) -> Self {
        CodeCache {
            index,
            blocks: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The indexing policy in force.
    pub fn index_kind(&self) -> CacheIndex {
        self.index
    }

    /// Looks up a block by its key.
    pub fn get(&mut self, key: u64) -> Option<Arc<TranslatedBlock>> {
        match self.blocks.get(&key) {
            Some(b) => {
                self.stats.hits += 1;
                Some(Arc::clone(b))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a block under its key.
    pub fn insert(&mut self, block: TranslatedBlock) -> Arc<TranslatedBlock> {
        let arc = Arc::new(block);
        self.blocks.insert(arc.key, Arc::clone(&arc));
        arc
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Discards every translation (the QEMU-style response to a guest
    /// page-table change when indexing by virtual address).
    pub fn invalidate_all(&mut self) {
        self.stats.invalidated_full += self.blocks.len() as u64;
        self.blocks.clear();
    }

    /// Discards translations whose guest code lies in the given guest
    /// physical page (Captive's response to a detected self-modifying write).
    pub fn invalidate_phys_page(&mut self, page_base: u64) {
        let page_end = page_base + 4096;
        let before = self.blocks.len();
        self.blocks.retain(|_, b| {
            let start = b.guest_phys;
            let end = b.guest_phys + b.guest_bytes();
            end <= page_base || start >= page_end
        });
        self.stats.invalidated_page += (before - self.blocks.len()) as u64;
    }

    /// Total bytes of encoded host code currently cached.
    pub fn total_encoded_bytes(&self) -> usize {
        self.blocks.values().map(|b| b.encoded_bytes).sum()
    }

    /// Total guest instructions covered by cached translations.
    pub fn total_guest_insns(&self) -> usize {
        self.blocks.values().map(|b| b.guest_insns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(key: u64, phys: u64, insns: usize) -> TranslatedBlock {
        TranslatedBlock {
            key,
            guest_phys: phys,
            guest_virt: key,
            guest_insns: insns,
            code: Arc::new(vec![MachInsn::Ret]),
            encoded_bytes: insns * 40,
            lir_insns: insns * 12,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        assert!(c.get(0x1000).is_none());
        c.insert(block(0x1000, 0x1000, 3));
        assert!(c.get(0x1000).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn full_invalidation_clears_everything() {
        let mut c = CodeCache::new(CacheIndex::GuestVirtual);
        c.insert(block(0x1000, 0x1000, 3));
        c.insert(block(0x2000, 0x2000, 5));
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidated_full, 2);
    }

    #[test]
    fn page_invalidation_only_hits_overlapping_blocks() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 0x1000, 4));
        c.insert(block(0x1FF8, 0x1FF8, 4)); // straddles into 0x2000 page
        c.insert(block(0x3000, 0x3000, 4));
        c.invalidate_phys_page(0x2000);
        assert!(c.get(0x1000).is_some());
        assert!(c.get(0x1FF8).is_none(), "straddling block invalidated");
        assert!(c.get(0x3000).is_some());
        assert_eq!(c.stats().invalidated_page, 1);
    }

    #[test]
    fn aggregate_statistics() {
        let mut c = CodeCache::new(CacheIndex::GuestPhysical);
        c.insert(block(0x1000, 0x1000, 2));
        c.insert(block(0x2000, 0x2000, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_guest_insns(), 5);
        assert_eq!(c.total_encoded_bytes(), 200);
    }
}
