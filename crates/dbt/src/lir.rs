//! Low-level IR: host instructions over virtual registers.
//!
//! This is the paper's "low-level IR [that] is effectively x86 machine
//! instructions, but with virtual register operands in place of physical
//! registers" (Fig. 10).  A handful of reserved physical registers appear
//! implicitly: the guest register-file base pointer (`%rbp`) and the guest
//! program counter (`%r15`), exactly as in the paper's examples.

use hvm::{AluOp, Cond, FpOp, Gpr, MemSize, VecOp};

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VregClass {
    /// General-purpose (64-bit integer).
    Gpr,
    /// Vector / floating-point (128-bit).
    Xmm,
}

/// A virtual register produced by the DAG builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vreg {
    /// Dense id assigned by the emitter.
    pub id: u32,
    /// Register class.
    pub class: VregClass,
}

impl std::fmt::Display for Vreg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            VregClass::Gpr => write!(f, "%v{}", self.id),
            VregClass::Xmm => write!(f, "%vx{}", self.id),
        }
    }
}

/// Base of a LIR memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirBase {
    /// The guest register file base pointer (physical `%rbp`).
    RegFile,
    /// A computed address held in a virtual register.
    Vreg(Vreg),
}

/// A LIR memory operand: `disp + base (+ index * scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LirMem {
    /// Base.
    pub base: LirBase,
    /// Optional scaled index.
    pub index: Option<(Vreg, u8)>,
    /// Displacement.
    pub disp: i32,
}

impl LirMem {
    /// A reference into the guest register file at byte offset `disp`.
    pub fn regfile(disp: i32) -> Self {
        LirMem {
            base: LirBase::RegFile,
            index: None,
            disp,
        }
    }

    /// A reference through a computed virtual-register base.
    pub fn vreg(base: Vreg, disp: i32) -> Self {
        LirMem {
            base: LirBase::Vreg(base),
            index: None,
            disp,
        }
    }
}

/// A classified fixed-offset access to the guest register file: the byte
/// offset (off the register-file base pointer) and the access width.  This is
/// the slot metadata the emitter records at DAG-collapse time; the
/// [`crate::opt`] passes reason about slot liveness through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileAccess {
    /// Byte offset of the slot relative to the register-file base.
    pub offset: i32,
    /// Access width.
    pub size: MemSize,
}

impl RegFileAccess {
    /// First byte touched.
    pub fn start(&self) -> i32 {
        self.offset
    }

    /// One past the last byte touched.
    pub fn end(&self) -> i32 {
        self.offset + self.size.bytes() as i32
    }

    /// True if this access writes every byte `other` touches.
    pub fn covers(&self, other: &RegFileAccess) -> bool {
        self.start() <= other.start() && self.end() >= other.end()
    }

    /// True if the two accesses share at least one byte.
    pub fn overlaps(&self, other: &RegFileAccess) -> bool {
        self.start() < other.end() && other.start() < self.end()
    }
}

/// A register-or-immediate LIR operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirOperand {
    /// Virtual register.
    Vreg(Vreg),
    /// Immediate.
    Imm(u64),
}

/// One low-level IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirInsn {
    /// Pseudo-instruction marking a branch target within the block.
    Label { id: u32 },
    /// `dst <- imm`.
    MovImm { dst: Vreg, imm: u64 },
    /// `dst <- src`.
    MovReg { dst: Vreg, src: Vreg },
    /// Zero-extending load.
    Load {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Sign-extending load.
    LoadSx {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Store a register.
    Store {
        src: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Store an immediate.
    StoreImm {
        imm: u64,
        addr: LirMem,
        size: MemSize,
    },
    /// Address computation.
    Lea { dst: Vreg, addr: LirMem },
    /// Two-address ALU operation.
    Alu {
        op: AluOp,
        dst: Vreg,
        src: LirOperand,
    },
    /// Flag-setting compare.
    Cmp { a: Vreg, b: LirOperand },
    /// Flag-setting bit test.
    Test { a: Vreg, b: LirOperand },
    /// Negate in place.
    Neg { dst: Vreg },
    /// Complement in place.
    Not { dst: Vreg },
    /// Zero-extend the low bits of `src` into `dst`.
    MovZx { dst: Vreg, src: Vreg, size: MemSize },
    /// Sign-extend the low bits of `src` into `dst`.
    MovSx { dst: Vreg, src: Vreg, size: MemSize },
    /// Materialise a condition as 0/1.
    SetCc { cond: Cond, dst: Vreg },
    /// Conditional move.
    CmovCc { cond: Cond, dst: Vreg, src: Vreg },
    /// Unconditional jump to a label.
    Jmp { label: u32 },
    /// Conditional jump to a label.
    Jcc { cond: Cond, label: u32 },
    /// Read the guest PC (held in `%r15`) into a virtual register.
    ReadPc { dst: Vreg },
    /// Set the guest PC from an immediate.
    SetPcImm { imm: u64 },
    /// Set the guest PC from a virtual register.
    SetPcReg { src: Vreg },
    /// Advance the guest PC by a constant (the Fig. 9 node (d) specialisation).
    IncPc { imm: u64 },
    /// Move a value into a helper argument slot (0 = rdi, 1 = rsi, 2 = rdx, 3 = rcx).
    SetArg { index: u8, src: LirOperand },
    /// Call a runtime helper.
    CallHelper { helper: u16 },
    /// Read a helper's return value (rax) into a virtual register.
    ReadRet { dst: Vreg },
    /// Return to the dispatcher.
    Ret,
    /// Vector/FP load.
    LoadXmm {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Vector/FP store.
    StoreXmm {
        src: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// GPR to XMM move.
    GprToXmm { dst: Vreg, src: Vreg },
    /// XMM to GPR move.
    XmmToGpr { dst: Vreg, src: Vreg },
    /// Scalar FP operation (two-address).
    Fp { op: FpOp, dst: Vreg, src: Vreg },
    /// Fused multiply-add `dst <- a * b + dst`.
    FpFma { dst: Vreg, a: Vreg, b: Vreg },
    /// Scalar FP compare setting integer flags.
    FpCmp { a: Vreg, b: Vreg },
    /// Signed integer to double conversion.
    CvtI2D { dst: Vreg, src: Vreg },
    /// Double to signed integer conversion.
    CvtD2I { dst: Vreg, src: Vreg },
    /// Single to double conversion.
    CvtS2D { dst: Vreg, src: Vreg },
    /// Double to single conversion.
    CvtD2S { dst: Vreg, src: Vreg },
    /// Packed vector operation (two-address).
    Vec { op: VecOp, dst: Vreg, src: Vreg },
    /// Software interrupt.
    Int { vector: u8 },
    /// Port write from a virtual register.
    Out { port: u16, src: Vreg },
    /// Port read into a virtual register.
    In { dst: Vreg, port: u16 },
    /// Fast system call.
    Syscall,
    /// Flush the host TLB (ring-0 generated code only — Captive system ops).
    TlbFlushAll,
    /// Flush TLB entries of the current PCID.
    TlbFlushPcid,
    /// Intra-superblock constituent boundary (stitched block transition).
    TraceEdge,
    /// Region-internal backward transfer: sets the guest PC to `pc` and
    /// jumps back to `label` (bound at the loop header's first constituent).
    /// The loop-back edge of a looping region; lowers to
    /// [`hvm::MachInsn::BackEdge`].  `reconcile` marks a promoted loop: a
    /// loop exit falls through into the compensation stores that follow
    /// instead of returning to the dispatcher directly (see
    /// [`crate::opt`]'s promotion pass, which sets it).  `weight` is the
    /// number of guest loop iterations one transfer covers: 1 for ordinary
    /// back-edges, >1 when [`crate::idiom`]'s bulk-move rewrite compresses
    /// several byte-wide iterations into one wide trip — the machine credits
    /// `weight` back-edge transfers so trip accounting and the trip limit
    /// stay exact.
    BackEdge {
        pc: u64,
        label: u32,
        reconcile: bool,
        weight: u32,
    },
    /// XMM-to-XMM register move.  `U64` copies the low lane and zeroes the
    /// upper lane (the write shape of a `U64` [`LirInsn::LoadXmm`]); `U128`
    /// copies both lanes.  Produced by XMM store-to-load forwarding in
    /// [`crate::opt`].
    MovXmm { dst: Vreg, src: Vreg, size: MemSize },
}

/// Scratch registers reserved for spill handling and special lowering;
/// excluded from the allocatable pool.
pub const SCRATCH_GPRS: [Gpr; 3] = [Gpr::Rax, Gpr::Rdx, Gpr::Rsi];

/// Helper argument registers, in argument order.
pub const ARG_GPRS: [Gpr; 4] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx];

/// The pool of general-purpose registers available to the allocator.
/// Excludes the reserved stack pointer / register-file base / guest PC and
/// the scratch + argument registers clobbered around helper calls.
pub const GPR_POOL: [Gpr; 8] = [
    Gpr::Rbx,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
    Gpr::R14,
];

impl LirInsn {
    /// Virtual registers read by this instruction.
    pub fn uses(&self, out: &mut Vec<Vreg>) {
        let mem = |m: &LirMem, out: &mut Vec<Vreg>| {
            if let LirBase::Vreg(v) = m.base {
                out.push(v);
            }
            if let Some((v, _)) = m.index {
                out.push(v);
            }
        };
        let op = |o: &LirOperand, out: &mut Vec<Vreg>| {
            if let LirOperand::Vreg(v) = o {
                out.push(*v);
            }
        };
        match self {
            LirInsn::MovReg { src, .. } => out.push(*src),
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::Lea { addr, .. } => mem(addr, out),
            LirInsn::Store { src, addr, .. } => {
                out.push(*src);
                mem(addr, out);
            }
            LirInsn::StoreImm { addr, .. } => mem(addr, out),
            LirInsn::Alu { dst, src, .. } => {
                out.push(*dst);
                op(src, out);
            }
            LirInsn::Cmp { a, b } | LirInsn::Test { a, b } => {
                out.push(*a);
                op(b, out);
            }
            LirInsn::Neg { dst } | LirInsn::Not { dst } => out.push(*dst),
            LirInsn::MovZx { src, .. } | LirInsn::MovSx { src, .. } => out.push(*src),
            LirInsn::CmovCc { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
            LirInsn::SetPcReg { src } => out.push(*src),
            LirInsn::SetArg { src, .. } => op(src, out),
            LirInsn::LoadXmm { addr, .. } => mem(addr, out),
            LirInsn::StoreXmm { src, addr, .. } => {
                out.push(*src);
                mem(addr, out);
            }
            LirInsn::GprToXmm { src, .. }
            | LirInsn::XmmToGpr { src, .. }
            | LirInsn::MovXmm { src, .. } => out.push(*src),
            LirInsn::Fp { dst, src, .. } | LirInsn::Vec { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
            LirInsn::FpFma { dst, a, b } => {
                out.push(*dst);
                out.push(*a);
                out.push(*b);
            }
            LirInsn::FpCmp { a, b } => {
                out.push(*a);
                out.push(*b);
            }
            LirInsn::CvtI2D { src, .. }
            | LirInsn::CvtD2I { src, .. }
            | LirInsn::CvtS2D { src, .. }
            | LirInsn::CvtD2S { src, .. } => out.push(*src),
            LirInsn::Out { src, .. } => out.push(*src),
            _ => {}
        }
    }

    /// Virtual register written by this instruction, if any.
    pub fn def(&self) -> Option<Vreg> {
        match self {
            LirInsn::MovImm { dst, .. }
            | LirInsn::MovReg { dst, .. }
            | LirInsn::Load { dst, .. }
            | LirInsn::LoadSx { dst, .. }
            | LirInsn::Lea { dst, .. }
            | LirInsn::Alu { dst, .. }
            | LirInsn::Neg { dst }
            | LirInsn::Not { dst }
            | LirInsn::MovZx { dst, .. }
            | LirInsn::MovSx { dst, .. }
            | LirInsn::SetCc { dst, .. }
            | LirInsn::CmovCc { dst, .. }
            | LirInsn::ReadPc { dst }
            | LirInsn::ReadRet { dst }
            | LirInsn::LoadXmm { dst, .. }
            | LirInsn::GprToXmm { dst, .. }
            | LirInsn::XmmToGpr { dst, .. }
            | LirInsn::MovXmm { dst, .. }
            | LirInsn::Fp { dst, .. }
            | LirInsn::FpFma { dst, .. }
            | LirInsn::CvtI2D { dst, .. }
            | LirInsn::CvtD2I { dst, .. }
            | LirInsn::CvtS2D { dst, .. }
            | LirInsn::CvtD2S { dst, .. }
            | LirInsn::Vec { dst, .. }
            | LirInsn::In { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Rewrites every *pure source* occurrence of `from` to `to`: operand
    /// positions that only read the register.  Two-address destinations
    /// (`Alu`, `CmovCc`, `Fp`, `Vec`, `FpFma` and friends) both read and
    /// write `dst`, so `dst` fields are deliberately never touched — the
    /// copy-propagation pass in [`crate::opt`] relies on this distinction.
    /// Returns how many occurrences were rewritten.
    pub fn replace_pure_uses(&mut self, from: Vreg, to: Vreg) -> u32 {
        self.map_pure_uses(&mut |v| if v == from { Some(to) } else { None })
    }

    /// Rewrites every pure-source register occurrence `v` to `f(v)` where
    /// `f` returns a replacement (one traversal of the instruction, however
    /// many substitutions are pending — the shape copy propagation needs).
    /// The same destination-sparing rules as [`LirInsn::replace_pure_uses`]
    /// apply.  Returns how many occurrences were rewritten.
    pub fn map_pure_uses(&mut self, f: &mut impl FnMut(Vreg) -> Option<Vreg>) -> u32 {
        fn reg(v: &mut Vreg, f: &mut impl FnMut(Vreg) -> Option<Vreg>, n: &mut u32) {
            if let Some(to) = f(*v) {
                *v = to;
                *n += 1;
            }
        }
        fn mem(m: &mut LirMem, f: &mut impl FnMut(Vreg) -> Option<Vreg>, n: &mut u32) {
            if let LirBase::Vreg(v) = &mut m.base {
                reg(v, f, n);
            }
            if let Some((v, _)) = &mut m.index {
                reg(v, f, n);
            }
        }
        fn op(o: &mut LirOperand, f: &mut impl FnMut(Vreg) -> Option<Vreg>, n: &mut u32) {
            if let LirOperand::Vreg(v) = o {
                reg(v, f, n);
            }
        }
        let mut n = 0u32;
        match self {
            LirInsn::MovReg { src, .. } => reg(src, f, &mut n),
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::Lea { addr, .. }
            | LirInsn::StoreImm { addr, .. }
            | LirInsn::LoadXmm { addr, .. } => mem(addr, f, &mut n),
            LirInsn::Store { src, addr, .. } | LirInsn::StoreXmm { src, addr, .. } => {
                reg(src, f, &mut n);
                mem(addr, f, &mut n);
            }
            LirInsn::Alu { src, .. } => op(src, f, &mut n),
            LirInsn::Cmp { a, b } | LirInsn::Test { a, b } => {
                reg(a, f, &mut n);
                op(b, f, &mut n);
            }
            LirInsn::MovZx { src, .. } | LirInsn::MovSx { src, .. } => reg(src, f, &mut n),
            LirInsn::CmovCc { src, .. } => reg(src, f, &mut n),
            LirInsn::SetPcReg { src } => reg(src, f, &mut n),
            LirInsn::SetArg { src, .. } => op(src, f, &mut n),
            LirInsn::GprToXmm { src, .. }
            | LirInsn::XmmToGpr { src, .. }
            | LirInsn::MovXmm { src, .. } => reg(src, f, &mut n),
            LirInsn::Fp { src, .. } | LirInsn::Vec { src, .. } => reg(src, f, &mut n),
            LirInsn::FpFma { a, b, .. } => {
                reg(a, f, &mut n);
                reg(b, f, &mut n);
            }
            LirInsn::FpCmp { a, b } => {
                reg(a, f, &mut n);
                reg(b, f, &mut n);
            }
            LirInsn::CvtI2D { src, .. }
            | LirInsn::CvtD2I { src, .. }
            | LirInsn::CvtS2D { src, .. }
            | LirInsn::CvtD2S { src, .. } => reg(src, f, &mut n),
            LirInsn::Out { src, .. } => reg(src, f, &mut n),
            _ => {}
        }
        n
    }

    /// The register-file slot this instruction stores to, when the
    /// destination is a fixed offset off the register-file base (no index).
    /// Dynamic regfile addressing (an index component) is deliberately not
    /// classified — it shows up as [`LirInsn::observes_regfile`] instead.
    pub fn regfile_store(&self) -> Option<RegFileAccess> {
        match self {
            LirInsn::Store { addr, size, .. }
            | LirInsn::StoreImm { addr, size, .. }
            | LirInsn::StoreXmm { addr, size, .. } => Self::fixed_regfile_slot(addr, *size),
            _ => None,
        }
    }

    /// The register-file slot this instruction loads from, when the source is
    /// a fixed offset off the register-file base (no index).
    pub fn regfile_load(&self) -> Option<RegFileAccess> {
        match self {
            LirInsn::Load { addr, size, .. }
            | LirInsn::LoadSx { addr, size, .. }
            | LirInsn::LoadXmm { addr, size, .. } => Self::fixed_regfile_slot(addr, *size),
            _ => None,
        }
    }

    fn fixed_regfile_slot(addr: &LirMem, size: MemSize) -> Option<RegFileAccess> {
        match (addr.base, addr.index) {
            (LirBase::RegFile, None) => Some(RegFileAccess {
                offset: addr.disp,
                size,
            }),
            _ => None,
        }
    }

    /// True when the instruction can observe (or mutate) guest register-file
    /// state through a channel other than a classified fixed-slot load/store.
    /// These are the *observers* the [`crate::opt`] passes must respect: a
    /// regfile store is only dead if a covering store lands before any
    /// observer, and store-to-load forwarding state dies at every observer.
    ///
    /// The observer set, and why each member is in it:
    ///
    /// * **Guest-memory accesses** (any memory operand not a fixed regfile
    ///   slot, loads included): they can fault, and fault delivery hands the
    ///   guest's exception path a precise register file.
    /// * **Helper calls**: helpers read and write the register file directly
    ///   (exception delivery, `ERET`, system-register notification).
    /// * **Block exits and intra-block control flow** (`Ret`, `Jmp`, `Jcc`,
    ///   `Label`, `BackEdge`): a `Ret` mid-block is a superblock side-exit
    ///   stub, and the side-exit invariant requires every slot to be
    ///   architecturally current there; labels/jumps are join points the
    ///   block-scoped passes do not trace through.  A `BackEdge` is the
    ///   loop-back of a looping region: treating it (and the loop-header
    ///   `Label`) as an observer is what makes the slot passes *loop-sound*
    ///   — every slot is pinned architecturally current across the
    ///   back-edge, so iteration N's state is exact when iteration N+1 (or a
    ///   side exit) reads it.  [`LirInsn::TraceEdge`] is deliberately *not*
    ///   an observer — it marks a stitched constituent boundary inside one
    ///   superblock, which is exactly where cross-block elimination pays.
    /// * **Ports, interrupts, syscalls, TLB flushes**: they leave the
    ///   generated code for the hypervisor, which may inspect guest state.
    /// * **`Lea` of a regfile address / indexed regfile operands**: the slot
    ///   offset escapes into a register, so later accesses may alias any
    ///   slot.
    pub fn observes_regfile(&self) -> bool {
        let mem_observes = |m: &LirMem| matches!(m.base, LirBase::Vreg(_)) || m.index.is_some();
        match self {
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::Store { addr, .. }
            | LirInsn::StoreImm { addr, .. }
            | LirInsn::LoadXmm { addr, .. }
            | LirInsn::StoreXmm { addr, .. } => mem_observes(addr),
            // A regfile Lea leaks a slot address; conservatively a barrier
            // even though the emitter never produces one today.
            LirInsn::Lea { addr, .. } => matches!(addr.base, LirBase::RegFile),
            LirInsn::CallHelper { .. }
            | LirInsn::Ret
            | LirInsn::Jmp { .. }
            | LirInsn::Jcc { .. }
            | LirInsn::Label { .. }
            | LirInsn::BackEdge { .. }
            | LirInsn::Int { .. }
            | LirInsn::Out { .. }
            | LirInsn::In { .. }
            | LirInsn::Syscall
            | LirInsn::TlbFlushAll
            | LirInsn::TlbFlushPcid => true,
            _ => false,
        }
    }

    /// True when this instruction can *change* guest register-file state (or
    /// make register/slot contents untrackable) — the invalidation set for
    /// value-tracking passes (store-to-load forwarding, redundant-load
    /// reuse).  Strictly smaller than [`LirInsn::observes_regfile`]: an
    /// instruction that can only *fault* (a guest-memory load) pins live
    /// stores for fault precision, but it cannot rewrite a slot, so a value
    /// already known to be in a register is still that value afterwards.
    ///
    /// The invalidators:
    ///
    /// * **helper calls, interrupts, port I/O, syscalls, TLB flushes** — the
    ///   hypervisor may write the register file;
    /// * **guest-memory stores** (computed address): in this model the
    ///   register file is host-mapped, so an arbitrary store could alias a
    ///   slot;
    /// * **indexed regfile stores and `Lea` of a regfile address** —
    ///   dynamic slot addressing / address escapes;
    /// * **`Label`** — a join point: another incoming path may leave
    ///   different register/slot state; conversely `Jcc`/`Jmp`/`BackEdge`
    ///   and `TraceEdge` change no state, so facts survive onto the
    ///   fall-through path;
    /// * **`Ret`** — conservative hygiene at side exits (the following stub
    ///   label would clear anyway).
    pub fn invalidates_regfile_values(&self) -> bool {
        match self {
            LirInsn::Store { addr, .. }
            | LirInsn::StoreImm { addr, .. }
            | LirInsn::StoreXmm { addr, .. } => {
                matches!(addr.base, LirBase::Vreg(_)) || addr.index.is_some()
            }
            LirInsn::Lea { addr, .. } => matches!(addr.base, LirBase::RegFile),
            LirInsn::CallHelper { .. }
            | LirInsn::Ret
            | LirInsn::Label { .. }
            | LirInsn::Int { .. }
            | LirInsn::Out { .. }
            | LirInsn::In { .. }
            | LirInsn::Syscall
            | LirInsn::TlbFlushAll
            | LirInsn::TlbFlushPcid => true,
            _ => false,
        }
    }

    /// True when this instruction accesses guest memory through a computed
    /// address (anything but a fixed register-file slot) and can therefore
    /// raise a guest data abort.  A possible fault is an architectural
    /// effect in its own right: the access must survive dead-code
    /// elimination even when the value it produces is never read, or the
    /// guest would miss an exception it is owed.
    pub fn may_fault(&self) -> bool {
        let guest_mem = |m: &LirMem| matches!(m.base, LirBase::Vreg(_)) || m.index.is_some();
        match self {
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::LoadXmm { addr, .. }
            | LirInsn::Store { addr, .. }
            | LirInsn::StoreImm { addr, .. }
            | LirInsn::StoreXmm { addr, .. } => guest_mem(addr),
            _ => false,
        }
    }

    /// True when executing this instruction updates the host arithmetic
    /// flags.  Mirrors the HVM interpreter exactly: `Cmp`, `Test`, `FpCmp`
    /// and the flag-setting subset of ALU operations (`Add`, `Sub`, `And`,
    /// `Or`, `Xor`); multiplies, divides, shifts, `Neg` and `Not` leave the
    /// flags alone in the machine model.
    pub fn writes_host_flags(&self) -> bool {
        match self {
            LirInsn::Cmp { .. } | LirInsn::Test { .. } | LirInsn::FpCmp { .. } => true,
            LirInsn::Alu { op, .. } => matches!(
                op,
                AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor
            ),
            _ => false,
        }
    }

    /// True when this instruction's behaviour depends on the host flags.
    pub fn reads_host_flags(&self) -> bool {
        matches!(
            self,
            LirInsn::SetCc { .. } | LirInsn::CmovCc { .. } | LirInsn::Jcc { .. }
        )
    }

    /// True if the instruction has an effect beyond writing its destination
    /// virtual register (memory, PC, flags consumed later, control flow, ...).
    /// Dead-code marking in the register allocator only removes instructions
    /// for which this returns `false` and whose destination is never read.
    pub fn has_side_effect(&self) -> bool {
        match self {
            // A load can still fault: a guest-memory load is effectful even
            // with a dead destination (the data abort is guest-visible).
            LirInsn::Load { .. } | LirInsn::LoadSx { .. } | LirInsn::LoadXmm { .. } => {
                self.may_fault()
            }
            LirInsn::MovImm { .. }
            | LirInsn::MovReg { .. }
            | LirInsn::Lea { .. }
            | LirInsn::MovZx { .. }
            | LirInsn::MovSx { .. }
            | LirInsn::SetCc { .. }
            | LirInsn::ReadPc { .. }
            | LirInsn::GprToXmm { .. }
            | LirInsn::XmmToGpr { .. }
            | LirInsn::MovXmm { .. }
            | LirInsn::CvtI2D { .. }
            | LirInsn::CvtS2D { .. }
            | LirInsn::CvtD2S { .. } => false,
            // ALU writes flags a later Jcc/SetCc might read; treating it as
            // effectful keeps the fast allocator conservative and correct.
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvm::MemSize;

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    #[test]
    fn regfile_accesses_carry_offset_and_width() {
        let st = LirInsn::Store {
            src: v(0),
            addr: LirMem::regfile(256),
            size: MemSize::U64,
        };
        assert_eq!(
            st.regfile_store(),
            Some(RegFileAccess {
                offset: 256,
                size: MemSize::U64
            })
        );
        assert_eq!(st.regfile_load(), None);

        let ld = LirInsn::Load {
            dst: v(1),
            addr: LirMem::regfile(8),
            size: MemSize::U64,
        };
        assert_eq!(
            ld.regfile_load(),
            Some(RegFileAccess {
                offset: 8,
                size: MemSize::U64
            })
        );

        // Guest-memory operands are not classified as regfile slots.
        let guest = LirInsn::Store {
            src: v(0),
            addr: LirMem::vreg(v(2), 0),
            size: MemSize::U64,
        };
        assert_eq!(guest.regfile_store(), None);
        assert!(guest.observes_regfile(), "guest stores can fault");
    }

    #[test]
    fn access_geometry() {
        let a = RegFileAccess {
            offset: 0,
            size: MemSize::U128,
        };
        let b = RegFileAccess {
            offset: 8,
            size: MemSize::U64,
        };
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.overlaps(&b));
        let c = RegFileAccess {
            offset: 16,
            size: MemSize::U64,
        };
        assert!(!b.overlaps(&c));
    }

    #[test]
    fn observer_audit_over_every_variant() {
        // Observers: anything that can reach guest regfile state outside a
        // classified slot access.
        let observer = [
            LirInsn::CallHelper { helper: 1 },
            LirInsn::Ret,
            LirInsn::BackEdge {
                pc: 0x1000,
                label: 0,
                reconcile: false,
                weight: 1,
            },
            LirInsn::Jmp { label: 0 },
            LirInsn::Jcc {
                cond: Cond::Eq,
                label: 0,
            },
            LirInsn::Label { id: 0 },
            LirInsn::Int { vector: 3 },
            LirInsn::Out { port: 1, src: v(0) },
            LirInsn::In { dst: v(0), port: 1 },
            LirInsn::Syscall,
            LirInsn::TlbFlushAll,
            LirInsn::TlbFlushPcid,
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::vreg(v(1), 0),
                size: MemSize::U64,
            },
            LirInsn::Lea {
                dst: v(0),
                addr: LirMem::regfile(8),
            },
        ];
        for i in &observer {
            assert!(i.observes_regfile(), "{i:?} must be an observer");
        }
        // Non-observers: pure data flow, PC updates, fixed-slot accesses and
        // crucially the TraceEdge constituent boundary (cross-block
        // elimination inside superblocks depends on it being transparent).
        let transparent = [
            LirInsn::TraceEdge,
            LirInsn::SetPcImm { imm: 0x1000 },
            LirInsn::IncPc { imm: 4 },
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::Store {
                src: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::SetArg {
                index: 0,
                src: LirOperand::Imm(1),
            },
        ];
        for i in &transparent {
            assert!(!i.observes_regfile(), "{i:?} must not be an observer");
        }
        // An indexed regfile operand is a dynamic slot: observer.
        let indexed = LirInsn::Load {
            dst: v(0),
            addr: LirMem {
                base: LirBase::RegFile,
                index: Some((v(1), 8)),
                disp: 0,
            },
            size: MemSize::U64,
        };
        assert!(indexed.observes_regfile());
        assert_eq!(indexed.regfile_load(), None);
    }

    #[test]
    fn replace_pure_uses_spares_two_address_destinations() {
        // `Alu` reads and writes dst: only the source operand may be
        // rewritten.
        let mut alu = LirInsn::Alu {
            op: AluOp::Add,
            dst: v(1),
            src: LirOperand::Vreg(v(1)),
        };
        assert_eq!(alu.replace_pure_uses(v(1), v(2)), 1);
        assert!(
            matches!(alu, LirInsn::Alu { dst, src: LirOperand::Vreg(s), .. } if dst == v(1) && s == v(2))
        );

        let mut cmov = LirInsn::CmovCc {
            cond: Cond::Ne,
            dst: v(1),
            src: v(1),
        };
        assert_eq!(cmov.replace_pure_uses(v(1), v(3)), 1);
        assert!(matches!(cmov, LirInsn::CmovCc { dst, src, .. } if dst == v(1) && src == v(3)));

        // Memory operands rewrite base and index.
        let mut st = LirInsn::Store {
            src: v(1),
            addr: LirMem {
                base: LirBase::Vreg(v(1)),
                index: Some((v(1), 8)),
                disp: 4,
            },
            size: MemSize::U64,
        };
        assert_eq!(st.replace_pure_uses(v(1), v(4)), 3);

        // Pure moves rewrite the source only.
        let mut mv = LirInsn::MovReg {
            dst: v(5),
            src: v(1),
        };
        assert_eq!(mv.replace_pure_uses(v(1), v(4)), 1);
        assert!(matches!(mv, LirInsn::MovReg { dst, src } if dst == v(5) && src == v(4)));
    }

    #[test]
    fn faulting_accesses_are_classified_and_effectful() {
        // Guest-memory accesses (computed address) can raise a data abort:
        // they must read as may_fault and, for loads, as side-effecting so
        // dead-code elimination keeps them alive with a dead destination.
        let guest_load = LirInsn::Load {
            dst: v(0),
            addr: LirMem::vreg(v(1), 0),
            size: MemSize::U64,
        };
        assert!(guest_load.may_fault());
        assert!(
            guest_load.has_side_effect(),
            "a faulting load is effectful even if its value is dead"
        );
        let indexed = LirInsn::LoadXmm {
            dst: v(0),
            addr: LirMem {
                base: LirBase::RegFile,
                index: Some((v(1), 8)),
                disp: 0,
            },
            size: MemSize::U64,
        };
        assert!(indexed.may_fault());
        assert!(indexed.has_side_effect());
        // Fixed regfile slots cannot fault: still freely removable.
        let regfile_load = LirInsn::Load {
            dst: v(0),
            addr: LirMem::regfile(8),
            size: MemSize::U64,
        };
        assert!(!regfile_load.may_fault());
        assert!(!regfile_load.has_side_effect());
        let guest_store = LirInsn::Store {
            src: v(0),
            addr: LirMem::vreg(v(1), 0),
            size: MemSize::U64,
        };
        assert!(guest_store.may_fault());
        assert!(!LirInsn::StoreImm {
            imm: 0,
            addr: LirMem::regfile(0),
            size: MemSize::U64,
        }
        .may_fault());
    }

    #[test]
    fn flag_classification_matches_the_machine_model() {
        // Writers per the HVM interpreter.
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
            assert!(LirInsn::Alu {
                op,
                dst: v(0),
                src: LirOperand::Imm(1)
            }
            .writes_host_flags());
        }
        for op in [AluOp::Mul, AluOp::Shl, AluOp::Shr, AluOp::DivU, AluOp::Ror] {
            assert!(!LirInsn::Alu {
                op,
                dst: v(0),
                src: LirOperand::Imm(1)
            }
            .writes_host_flags());
        }
        assert!(LirInsn::Cmp {
            a: v(0),
            b: LirOperand::Imm(0)
        }
        .writes_host_flags());
        assert!(LirInsn::Test {
            a: v(0),
            b: LirOperand::Imm(0)
        }
        .writes_host_flags());
        assert!(LirInsn::FpCmp { a: v(0), b: v(1) }.writes_host_flags());
        // Neg/Not leave flags alone in the machine model.
        assert!(!LirInsn::Neg { dst: v(0) }.writes_host_flags());
        assert!(!LirInsn::Not { dst: v(0) }.writes_host_flags());
        // Readers.
        assert!(LirInsn::SetCc {
            cond: Cond::Eq,
            dst: v(0)
        }
        .reads_host_flags());
        assert!(LirInsn::CmovCc {
            cond: Cond::Ne,
            dst: v(0),
            src: v(1)
        }
        .reads_host_flags());
        assert!(LirInsn::Jcc {
            cond: Cond::Eq,
            label: 0
        }
        .reads_host_flags());
        assert!(!LirInsn::Jmp { label: 0 }.reads_host_flags());
    }
}
