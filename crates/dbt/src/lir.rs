//! Low-level IR: host instructions over virtual registers.
//!
//! This is the paper's "low-level IR [that] is effectively x86 machine
//! instructions, but with virtual register operands in place of physical
//! registers" (Fig. 10).  A handful of reserved physical registers appear
//! implicitly: the guest register-file base pointer (`%rbp`) and the guest
//! program counter (`%r15`), exactly as in the paper's examples.

use hvm::{AluOp, Cond, FpOp, Gpr, MemSize, VecOp};

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VregClass {
    /// General-purpose (64-bit integer).
    Gpr,
    /// Vector / floating-point (128-bit).
    Xmm,
}

/// A virtual register produced by the DAG builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vreg {
    /// Dense id assigned by the emitter.
    pub id: u32,
    /// Register class.
    pub class: VregClass,
}

impl std::fmt::Display for Vreg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            VregClass::Gpr => write!(f, "%v{}", self.id),
            VregClass::Xmm => write!(f, "%vx{}", self.id),
        }
    }
}

/// Base of a LIR memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirBase {
    /// The guest register file base pointer (physical `%rbp`).
    RegFile,
    /// A computed address held in a virtual register.
    Vreg(Vreg),
}

/// A LIR memory operand: `disp + base (+ index * scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LirMem {
    /// Base.
    pub base: LirBase,
    /// Optional scaled index.
    pub index: Option<(Vreg, u8)>,
    /// Displacement.
    pub disp: i32,
}

impl LirMem {
    /// A reference into the guest register file at byte offset `disp`.
    pub fn regfile(disp: i32) -> Self {
        LirMem {
            base: LirBase::RegFile,
            index: None,
            disp,
        }
    }

    /// A reference through a computed virtual-register base.
    pub fn vreg(base: Vreg, disp: i32) -> Self {
        LirMem {
            base: LirBase::Vreg(base),
            index: None,
            disp,
        }
    }
}

/// A register-or-immediate LIR operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirOperand {
    /// Virtual register.
    Vreg(Vreg),
    /// Immediate.
    Imm(u64),
}

/// One low-level IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LirInsn {
    /// Pseudo-instruction marking a branch target within the block.
    Label { id: u32 },
    /// `dst <- imm`.
    MovImm { dst: Vreg, imm: u64 },
    /// `dst <- src`.
    MovReg { dst: Vreg, src: Vreg },
    /// Zero-extending load.
    Load {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Sign-extending load.
    LoadSx {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Store a register.
    Store {
        src: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Store an immediate.
    StoreImm {
        imm: u64,
        addr: LirMem,
        size: MemSize,
    },
    /// Address computation.
    Lea { dst: Vreg, addr: LirMem },
    /// Two-address ALU operation.
    Alu {
        op: AluOp,
        dst: Vreg,
        src: LirOperand,
    },
    /// Flag-setting compare.
    Cmp { a: Vreg, b: LirOperand },
    /// Flag-setting bit test.
    Test { a: Vreg, b: LirOperand },
    /// Negate in place.
    Neg { dst: Vreg },
    /// Complement in place.
    Not { dst: Vreg },
    /// Zero-extend the low bits of `src` into `dst`.
    MovZx { dst: Vreg, src: Vreg, size: MemSize },
    /// Sign-extend the low bits of `src` into `dst`.
    MovSx { dst: Vreg, src: Vreg, size: MemSize },
    /// Materialise a condition as 0/1.
    SetCc { cond: Cond, dst: Vreg },
    /// Conditional move.
    CmovCc { cond: Cond, dst: Vreg, src: Vreg },
    /// Unconditional jump to a label.
    Jmp { label: u32 },
    /// Conditional jump to a label.
    Jcc { cond: Cond, label: u32 },
    /// Read the guest PC (held in `%r15`) into a virtual register.
    ReadPc { dst: Vreg },
    /// Set the guest PC from an immediate.
    SetPcImm { imm: u64 },
    /// Set the guest PC from a virtual register.
    SetPcReg { src: Vreg },
    /// Advance the guest PC by a constant (the Fig. 9 node (d) specialisation).
    IncPc { imm: u64 },
    /// Move a value into a helper argument slot (0 = rdi, 1 = rsi, 2 = rdx, 3 = rcx).
    SetArg { index: u8, src: LirOperand },
    /// Call a runtime helper.
    CallHelper { helper: u16 },
    /// Read a helper's return value (rax) into a virtual register.
    ReadRet { dst: Vreg },
    /// Return to the dispatcher.
    Ret,
    /// Vector/FP load.
    LoadXmm {
        dst: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// Vector/FP store.
    StoreXmm {
        src: Vreg,
        addr: LirMem,
        size: MemSize,
    },
    /// GPR to XMM move.
    GprToXmm { dst: Vreg, src: Vreg },
    /// XMM to GPR move.
    XmmToGpr { dst: Vreg, src: Vreg },
    /// Scalar FP operation (two-address).
    Fp { op: FpOp, dst: Vreg, src: Vreg },
    /// Fused multiply-add `dst <- a * b + dst`.
    FpFma { dst: Vreg, a: Vreg, b: Vreg },
    /// Scalar FP compare setting integer flags.
    FpCmp { a: Vreg, b: Vreg },
    /// Signed integer to double conversion.
    CvtI2D { dst: Vreg, src: Vreg },
    /// Double to signed integer conversion.
    CvtD2I { dst: Vreg, src: Vreg },
    /// Single to double conversion.
    CvtS2D { dst: Vreg, src: Vreg },
    /// Double to single conversion.
    CvtD2S { dst: Vreg, src: Vreg },
    /// Packed vector operation (two-address).
    Vec { op: VecOp, dst: Vreg, src: Vreg },
    /// Software interrupt.
    Int { vector: u8 },
    /// Port write from a virtual register.
    Out { port: u16, src: Vreg },
    /// Port read into a virtual register.
    In { dst: Vreg, port: u16 },
    /// Fast system call.
    Syscall,
    /// Flush the host TLB (ring-0 generated code only — Captive system ops).
    TlbFlushAll,
    /// Flush TLB entries of the current PCID.
    TlbFlushPcid,
    /// Intra-superblock constituent boundary (stitched block transition).
    TraceEdge,
}

/// Scratch registers reserved for spill handling and special lowering;
/// excluded from the allocatable pool.
pub const SCRATCH_GPRS: [Gpr; 3] = [Gpr::Rax, Gpr::Rdx, Gpr::Rsi];

/// Helper argument registers, in argument order.
pub const ARG_GPRS: [Gpr; 4] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx];

/// The pool of general-purpose registers available to the allocator.
/// Excludes the reserved stack pointer / register-file base / guest PC and
/// the scratch + argument registers clobbered around helper calls.
pub const GPR_POOL: [Gpr; 8] = [
    Gpr::Rbx,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
    Gpr::R14,
];

impl LirInsn {
    /// Virtual registers read by this instruction.
    pub fn uses(&self, out: &mut Vec<Vreg>) {
        let mem = |m: &LirMem, out: &mut Vec<Vreg>| {
            if let LirBase::Vreg(v) = m.base {
                out.push(v);
            }
            if let Some((v, _)) = m.index {
                out.push(v);
            }
        };
        let op = |o: &LirOperand, out: &mut Vec<Vreg>| {
            if let LirOperand::Vreg(v) = o {
                out.push(*v);
            }
        };
        match self {
            LirInsn::MovReg { src, .. } => out.push(*src),
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::Lea { addr, .. } => mem(addr, out),
            LirInsn::Store { src, addr, .. } => {
                out.push(*src);
                mem(addr, out);
            }
            LirInsn::StoreImm { addr, .. } => mem(addr, out),
            LirInsn::Alu { dst, src, .. } => {
                out.push(*dst);
                op(src, out);
            }
            LirInsn::Cmp { a, b } | LirInsn::Test { a, b } => {
                out.push(*a);
                op(b, out);
            }
            LirInsn::Neg { dst } | LirInsn::Not { dst } => out.push(*dst),
            LirInsn::MovZx { src, .. } | LirInsn::MovSx { src, .. } => out.push(*src),
            LirInsn::CmovCc { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
            LirInsn::SetPcReg { src } => out.push(*src),
            LirInsn::SetArg { src, .. } => op(src, out),
            LirInsn::LoadXmm { addr, .. } => mem(addr, out),
            LirInsn::StoreXmm { src, addr, .. } => {
                out.push(*src);
                mem(addr, out);
            }
            LirInsn::GprToXmm { src, .. } | LirInsn::XmmToGpr { src, .. } => out.push(*src),
            LirInsn::Fp { dst, src, .. } | LirInsn::Vec { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
            LirInsn::FpFma { dst, a, b } => {
                out.push(*dst);
                out.push(*a);
                out.push(*b);
            }
            LirInsn::FpCmp { a, b } => {
                out.push(*a);
                out.push(*b);
            }
            LirInsn::CvtI2D { src, .. }
            | LirInsn::CvtD2I { src, .. }
            | LirInsn::CvtS2D { src, .. }
            | LirInsn::CvtD2S { src, .. } => out.push(*src),
            LirInsn::Out { src, .. } => out.push(*src),
            _ => {}
        }
    }

    /// Virtual register written by this instruction, if any.
    pub fn def(&self) -> Option<Vreg> {
        match self {
            LirInsn::MovImm { dst, .. }
            | LirInsn::MovReg { dst, .. }
            | LirInsn::Load { dst, .. }
            | LirInsn::LoadSx { dst, .. }
            | LirInsn::Lea { dst, .. }
            | LirInsn::Alu { dst, .. }
            | LirInsn::Neg { dst }
            | LirInsn::Not { dst }
            | LirInsn::MovZx { dst, .. }
            | LirInsn::MovSx { dst, .. }
            | LirInsn::SetCc { dst, .. }
            | LirInsn::CmovCc { dst, .. }
            | LirInsn::ReadPc { dst }
            | LirInsn::ReadRet { dst }
            | LirInsn::LoadXmm { dst, .. }
            | LirInsn::GprToXmm { dst, .. }
            | LirInsn::XmmToGpr { dst, .. }
            | LirInsn::Fp { dst, .. }
            | LirInsn::FpFma { dst, .. }
            | LirInsn::CvtI2D { dst, .. }
            | LirInsn::CvtD2I { dst, .. }
            | LirInsn::CvtS2D { dst, .. }
            | LirInsn::CvtD2S { dst, .. }
            | LirInsn::Vec { dst, .. }
            | LirInsn::In { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// True if the instruction has an effect beyond writing its destination
    /// virtual register (memory, PC, flags consumed later, control flow, ...).
    /// Dead-code marking in the register allocator only removes instructions
    /// for which this returns `false` and whose destination is never read.
    pub fn has_side_effect(&self) -> bool {
        match self {
            LirInsn::MovImm { .. }
            | LirInsn::MovReg { .. }
            | LirInsn::Load { .. }
            | LirInsn::LoadSx { .. }
            | LirInsn::Lea { .. }
            | LirInsn::MovZx { .. }
            | LirInsn::MovSx { .. }
            | LirInsn::SetCc { .. }
            | LirInsn::ReadPc { .. }
            | LirInsn::LoadXmm { .. }
            | LirInsn::GprToXmm { .. }
            | LirInsn::XmmToGpr { .. }
            | LirInsn::CvtI2D { .. }
            | LirInsn::CvtS2D { .. }
            | LirInsn::CvtD2S { .. } => false,
            // ALU writes flags a later Jcc/SetCc might read; treating it as
            // effectful keeps the fast allocator conservative and correct.
            _ => true,
        }
    }
}
