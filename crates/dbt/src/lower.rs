//! Lowering of register-allocated LIR to HVM64 machine instructions.
//!
//! This is the paper's final "instruction encoding" phase: dead instructions
//! marked by the allocator are skipped, virtual registers are replaced by
//! their physical assignments (with scratch-register reloads for spilled
//! values), labels disappear and relative jump targets are patched once all
//! instruction positions are known (Section 2.3.4).
//!
//! Lowering is fallible: a virtual register that reaches encoding with
//! neither a physical assignment nor a spill slot is an allocator/emitter
//! defect, and silently substituting a default register would corrupt guest
//! state at run time.  [`lower`] reports it as a [`LowerError`] instead; the
//! engines respond by bailing out of the translation (a plain block falls
//! back to raising a guest UNDEF exception, a region formation is abandoned
//! in favour of the constituent blocks), so a lowering defect degrades to
//! slower or fault-raising execution rather than wrong answers.

use crate::lir::{LirBase, LirInsn, LirMem, LirOperand, Vreg, ARG_GPRS, SCRATCH_GPRS};
use crate::regalloc::{Allocation, Assignment};
use hvm::{Gpr, MachInsn, MemRef, MemSize, Operand, Xmm};
use std::collections::HashMap;

/// Byte offset (relative to the register-file base pointer) of the spill
/// area.  The hypervisor reserves this scratch region just below the guest
/// register file.
pub const SPILL_AREA_OFFSET: i32 = -4096;

/// Scratch vector registers used for spilled XMM values (three, so an
/// `FpFma` whose operands all spilled still gets distinct reloads).
const XMM_SCRATCH: [Xmm; 3] = [Xmm(13), Xmm(14), Xmm(15)];

/// A lowering defect: virtual register `vreg` reached encoding with neither
/// a physical assignment nor a spill slot.  Emitting code for it would read
/// or clobber an arbitrary host register, so the translation must be
/// abandoned instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerError {
    /// Id of the unassigned virtual register.
    pub vreg: u32,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "virtual register v{} reached lowering without an assignment",
            self.vreg
        )
    }
}

impl std::error::Error for LowerError {}

struct Lowerer<'a> {
    alloc: &'a Allocation,
    out: Vec<MachInsn>,
    /// label id -> machine instruction index.
    label_pos: HashMap<u32, usize>,
    /// (machine index of Jmp/Jcc, label id) pairs to patch.
    fixups: Vec<(usize, u32)>,
    /// Scratch registers consumed so far for the current LIR instruction.
    scratch_used: usize,
    xmm_scratch_used: usize,
    /// First unassigned-vreg defect observed (checked after the pass; the
    /// helpers return a placeholder register so lowering can continue far
    /// enough to surface one error instead of panicking mid-instruction).
    error: Option<LowerError>,
}

impl<'a> Lowerer<'a> {
    fn new(alloc: &'a Allocation) -> Self {
        Lowerer {
            alloc,
            out: Vec::new(),
            label_pos: HashMap::new(),
            fixups: Vec::new(),
            scratch_used: 0,
            xmm_scratch_used: 0,
            error: None,
        }
    }

    /// Records an unassigned-vreg defect (first one wins).
    fn fail(&mut self, v: Vreg) {
        if self.error.is_none() {
            self.error = Some(LowerError { vreg: v.id });
        }
    }

    fn spill_slot_addr(slot: u32) -> MemRef {
        MemRef::base_disp(Gpr::Rbp, SPILL_AREA_OFFSET + (slot as i32) * 16)
    }

    /// Resolves a GPR-class vreg for *reading*, reloading from its spill slot
    /// into a scratch register if necessary.
    fn use_gpr(&mut self, v: Vreg) -> Gpr {
        match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Gpr(r)) => *r,
            Some(Assignment::Spill(slot)) => {
                let scratch = SCRATCH_GPRS[self.scratch_used % SCRATCH_GPRS.len()];
                self.scratch_used += 1;
                self.out.push(MachInsn::Load {
                    dst: scratch,
                    addr: Self::spill_slot_addr(*slot),
                    size: MemSize::U64,
                });
                scratch
            }
            _ => {
                self.fail(v);
                Gpr::Rax
            }
        }
    }

    /// Resolves a GPR-class vreg for *writing*.  Returns the register to
    /// write plus an optional store-back to the spill slot.
    fn def_gpr(&mut self, v: Vreg) -> (Gpr, Option<MachInsn>) {
        match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Gpr(r)) => (*r, None),
            Some(Assignment::Spill(slot)) => {
                let scratch = SCRATCH_GPRS[self.scratch_used % SCRATCH_GPRS.len()];
                self.scratch_used += 1;
                (
                    scratch,
                    Some(MachInsn::Store {
                        src: scratch,
                        addr: Self::spill_slot_addr(*slot),
                        size: MemSize::U64,
                    }),
                )
            }
            _ => {
                self.fail(v);
                (Gpr::Rax, None)
            }
        }
    }

    fn use_xmm(&mut self, v: Vreg) -> Xmm {
        match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Xmm(x)) => *x,
            Some(Assignment::Spill(slot)) => {
                let scratch = XMM_SCRATCH[self.xmm_scratch_used % XMM_SCRATCH.len()];
                self.xmm_scratch_used += 1;
                self.out.push(MachInsn::LoadXmm {
                    dst: scratch,
                    addr: Self::spill_slot_addr(*slot),
                    size: MemSize::U128,
                });
                scratch
            }
            _ => {
                self.fail(v);
                Xmm(0)
            }
        }
    }

    fn def_xmm(&mut self, v: Vreg) -> (Xmm, Option<MachInsn>) {
        match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Xmm(x)) => (*x, None),
            Some(Assignment::Spill(slot)) => {
                let scratch = XMM_SCRATCH[self.xmm_scratch_used % XMM_SCRATCH.len()];
                self.xmm_scratch_used += 1;
                (
                    scratch,
                    Some(MachInsn::StoreXmm {
                        src: scratch,
                        addr: Self::spill_slot_addr(*slot),
                        size: MemSize::U128,
                    }),
                )
            }
            _ => {
                self.fail(v);
                (Xmm(0), None)
            }
        }
    }

    /// Resolves a GPR-class vreg used as a *two-address destination*: the
    /// old value is reloaded from the spill slot if necessary (the
    /// instruction reads it), and the modified value is stored back after.
    fn rmw_gpr(&mut self, v: Vreg) -> (Gpr, Option<MachInsn>) {
        let reg = self.use_gpr(v);
        let store_back = match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Spill(slot)) => Some(MachInsn::Store {
                src: reg,
                addr: Self::spill_slot_addr(*slot),
                size: MemSize::U64,
            }),
            _ => None,
        };
        (reg, store_back)
    }

    /// XMM-class equivalent of [`Lowerer::rmw_gpr`].
    fn rmw_xmm(&mut self, v: Vreg) -> (Xmm, Option<MachInsn>) {
        let reg = self.use_xmm(v);
        let store_back = match self.alloc.assignment.get(&v.id) {
            Some(Assignment::Spill(slot)) => Some(MachInsn::StoreXmm {
                src: reg,
                addr: Self::spill_slot_addr(*slot),
                size: MemSize::U128,
            }),
            _ => None,
        };
        (reg, store_back)
    }

    fn mem(&mut self, m: &LirMem) -> MemRef {
        let base = match m.base {
            LirBase::RegFile => Gpr::Rbp,
            LirBase::Vreg(v) => self.use_gpr(v),
        };
        let index = m.index.map(|(v, scale)| (self.use_gpr(v), scale));
        MemRef {
            base,
            index,
            disp: m.disp,
        }
    }

    fn operand(&mut self, o: &LirOperand) -> Operand {
        match o {
            LirOperand::Vreg(v) => Operand::Reg(self.use_gpr(*v)),
            LirOperand::Imm(i) => Operand::Imm(*i),
        }
    }

    fn push(&mut self, insn: MachInsn, store_back: Option<MachInsn>) {
        self.out.push(insn);
        if let Some(sb) = store_back {
            self.out.push(sb);
        }
    }

    fn lower_insn(&mut self, insn: &LirInsn) {
        self.scratch_used = 0;
        self.xmm_scratch_used = 0;
        match insn {
            LirInsn::Label { id } => {
                self.label_pos.insert(*id, self.out.len());
            }
            LirInsn::MovImm { dst, imm } => {
                let (d, sb) = self.def_gpr(*dst);
                self.push(MachInsn::MovImm { dst: d, imm: *imm }, sb);
            }
            LirInsn::MovReg { dst, src } => {
                let s = self.use_gpr(*src);
                let (d, sb) = self.def_gpr(*dst);
                self.push(MachInsn::MovReg { dst: d, src: s }, sb);
            }
            LirInsn::Load { dst, addr, size } => {
                let a = self.mem(addr);
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::Load {
                        dst: d,
                        addr: a,
                        size: *size,
                    },
                    sb,
                );
            }
            LirInsn::LoadSx { dst, addr, size } => {
                let a = self.mem(addr);
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::LoadSx {
                        dst: d,
                        addr: a,
                        size: *size,
                    },
                    sb,
                );
            }
            LirInsn::Store { src, addr, size } => {
                let s = self.use_gpr(*src);
                let a = self.mem(addr);
                self.out.push(MachInsn::Store {
                    src: s,
                    addr: a,
                    size: *size,
                });
            }
            LirInsn::StoreImm { imm, addr, size } => {
                let a = self.mem(addr);
                self.out.push(MachInsn::StoreImm {
                    imm: *imm,
                    addr: a,
                    size: *size,
                });
            }
            LirInsn::Lea { dst, addr } => {
                let a = self.mem(addr);
                let (d, sb) = self.def_gpr(*dst);
                self.push(MachInsn::Lea { dst: d, addr: a }, sb);
            }
            LirInsn::Alu { op, dst, src } => {
                let s = self.operand(src);
                // Two-address: the destination is also a source.
                let (d, sb) = self.rmw_gpr(*dst);
                self.push(
                    MachInsn::Alu {
                        op: *op,
                        dst: d,
                        src: s,
                    },
                    sb,
                );
            }
            LirInsn::Cmp { a, b } => {
                let av = self.use_gpr(*a);
                let bv = self.operand(b);
                self.out.push(MachInsn::Cmp { a: av, b: bv });
            }
            LirInsn::Test { a, b } => {
                let av = self.use_gpr(*a);
                let bv = self.operand(b);
                self.out.push(MachInsn::Test { a: av, b: bv });
            }
            LirInsn::Neg { dst } => {
                let (d, sb) = self.rmw_gpr(*dst);
                self.push(MachInsn::Neg { dst: d }, sb);
            }
            LirInsn::Not { dst } => {
                let (d, sb) = self.rmw_gpr(*dst);
                self.push(MachInsn::Not { dst: d }, sb);
            }
            LirInsn::MovZx { dst, src, size } => {
                let s = self.use_gpr(*src);
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::MovZx {
                        dst: d,
                        src: s,
                        size: *size,
                    },
                    sb,
                );
            }
            LirInsn::MovSx { dst, src, size } => {
                let s = self.use_gpr(*src);
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::MovSx {
                        dst: d,
                        src: s,
                        size: *size,
                    },
                    sb,
                );
            }
            LirInsn::SetCc { cond, dst } => {
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::SetCc {
                        cond: *cond,
                        dst: d,
                    },
                    sb,
                );
            }
            LirInsn::CmovCc { cond, dst, src } => {
                let s = self.use_gpr(*src);
                // Read-modify-write: a spilled destination must be stored
                // back even when the move is not taken (the reload into the
                // scratch register preserved the old value).
                let (d, sb) = self.rmw_gpr(*dst);
                self.push(
                    MachInsn::CmovCc {
                        cond: *cond,
                        dst: d,
                        src: s,
                    },
                    sb,
                );
            }
            LirInsn::Jmp { label } => {
                self.fixups.push((self.out.len(), *label));
                self.out.push(MachInsn::Jmp { target: 0 });
            }
            LirInsn::Jcc { cond, label } => {
                self.fixups.push((self.out.len(), *label));
                self.out.push(MachInsn::Jcc {
                    cond: *cond,
                    target: 0,
                });
            }
            LirInsn::ReadPc { dst } => {
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::MovReg {
                        dst: d,
                        src: Gpr::R15,
                    },
                    sb,
                );
            }
            LirInsn::SetPcImm { imm } => {
                self.out.push(MachInsn::MovImm {
                    dst: Gpr::R15,
                    imm: *imm,
                });
            }
            LirInsn::SetPcReg { src } => {
                let s = self.use_gpr(*src);
                self.out.push(MachInsn::MovReg {
                    dst: Gpr::R15,
                    src: s,
                });
            }
            LirInsn::IncPc { imm } => {
                // Flag-preserving PC advance: `lea imm(%r15), %r15` rather
                // than an `add`, so a (possibly coalesced) PC update can sit
                // between a flag writer and its reader without clobbering
                // the host flags.
                self.out.push(MachInsn::Lea {
                    dst: Gpr::R15,
                    addr: MemRef::base_disp(Gpr::R15, *imm as i32),
                });
            }
            LirInsn::SetArg { index, src } => {
                let dst = ARG_GPRS[*index as usize];
                match self.operand(src) {
                    Operand::Reg(r) => self.out.push(MachInsn::MovReg { dst, src: r }),
                    Operand::Imm(i) => self.out.push(MachInsn::MovImm { dst, imm: i }),
                }
            }
            LirInsn::CallHelper { helper } => {
                self.out.push(MachInsn::CallHelper { helper: *helper });
            }
            LirInsn::ReadRet { dst } => {
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::MovReg {
                        dst: d,
                        src: Gpr::Rax,
                    },
                    sb,
                );
            }
            LirInsn::Ret => self.out.push(MachInsn::Ret),
            LirInsn::LoadXmm { dst, addr, size } => {
                let a = self.mem(addr);
                let (d, sb) = self.def_xmm(*dst);
                self.push(
                    MachInsn::LoadXmm {
                        dst: d,
                        addr: a,
                        size: *size,
                    },
                    sb,
                );
            }
            LirInsn::StoreXmm { src, addr, size } => {
                let s = self.use_xmm(*src);
                let a = self.mem(addr);
                self.out.push(MachInsn::StoreXmm {
                    src: s,
                    addr: a,
                    size: *size,
                });
            }
            LirInsn::GprToXmm { dst, src } => {
                let s = self.use_gpr(*src);
                let (d, sb) = self.def_xmm(*dst);
                self.push(MachInsn::MovGprToXmm { dst: d, src: s }, sb);
            }
            LirInsn::XmmToGpr { dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.def_gpr(*dst);
                self.push(MachInsn::MovXmmToGpr { dst: d, src: s }, sb);
            }
            LirInsn::Fp { op, dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.rmw_xmm(*dst);
                self.push(
                    MachInsn::Fp {
                        op: *op,
                        dst: d,
                        src: s,
                    },
                    sb,
                );
            }
            LirInsn::FpFma { dst, a, b } => {
                let av = self.use_xmm(*a);
                let bv = self.use_xmm(*b);
                let (d, sb) = self.rmw_xmm(*dst);
                self.push(
                    MachInsn::FpFma {
                        dst: d,
                        a: av,
                        b: bv,
                    },
                    sb,
                );
            }
            LirInsn::FpCmp { a, b } => {
                let av = self.use_xmm(*a);
                let bv = self.use_xmm(*b);
                self.out.push(MachInsn::FpCmp { a: av, b: bv });
            }
            LirInsn::CvtI2D { dst, src } => {
                let s = self.use_gpr(*src);
                let (d, sb) = self.def_xmm(*dst);
                self.push(MachInsn::CvtI2D { dst: d, src: s }, sb);
            }
            LirInsn::CvtD2I { dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.def_gpr(*dst);
                self.push(MachInsn::CvtD2I { dst: d, src: s }, sb);
            }
            LirInsn::CvtS2D { dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.def_xmm(*dst);
                self.push(MachInsn::CvtS2D { dst: d, src: s }, sb);
            }
            LirInsn::CvtD2S { dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.def_xmm(*dst);
                self.push(MachInsn::CvtD2S { dst: d, src: s }, sb);
            }
            LirInsn::Vec { op, dst, src } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.rmw_xmm(*dst);
                self.push(
                    MachInsn::Vec {
                        op: *op,
                        dst: d,
                        src: s,
                    },
                    sb,
                );
            }
            LirInsn::Int { vector } => self.out.push(MachInsn::Int { vector: *vector }),
            LirInsn::Out { port, src } => {
                let s = self.use_gpr(*src);
                self.out.push(MachInsn::Out {
                    port: *port,
                    src: s,
                });
            }
            LirInsn::In { dst, port } => {
                let (d, sb) = self.def_gpr(*dst);
                self.push(
                    MachInsn::In {
                        dst: d,
                        port: *port,
                    },
                    sb,
                );
            }
            LirInsn::Syscall => self.out.push(MachInsn::Syscall),
            LirInsn::TlbFlushAll => self.out.push(MachInsn::TlbFlushAll),
            LirInsn::TlbFlushPcid => self.out.push(MachInsn::TlbFlushPcid),
            LirInsn::TraceEdge => self.out.push(MachInsn::TraceEdge),
            LirInsn::BackEdge {
                pc,
                label,
                reconcile,
                weight,
            } => {
                self.fixups.push((self.out.len(), *label));
                self.out.push(MachInsn::BackEdge {
                    pc: *pc,
                    target: 0,
                    reconcile: *reconcile,
                    weight: *weight,
                });
            }
            LirInsn::MovXmm { dst, src, size } => {
                let s = self.use_xmm(*src);
                let (d, sb) = self.def_xmm(*dst);
                self.push(
                    MachInsn::MovXmm {
                        dst: d,
                        src: s,
                        size: *size,
                    },
                    sb,
                );
            }
        }
    }
}

/// Lowers allocated LIR to machine instructions, skipping dead instructions
/// and patching relative jumps.  Fails with a [`LowerError`] if any live
/// virtual register has no assignment — the caller must discard the
/// translation and fall back (see the module docs).
pub fn lower(lir: &[LirInsn], alloc: &Allocation) -> Result<Vec<MachInsn>, LowerError> {
    let mut l = Lowerer::new(alloc);
    for (i, insn) in lir.iter().enumerate() {
        if alloc.dead.get(i).copied().unwrap_or(false) {
            continue;
        }
        l.lower_insn(insn);
    }
    if let Some(err) = l.error {
        return Err(err);
    }
    // Patch jumps: targets are relative to the jump's own index.
    for (pos, label) in l.fixups {
        let target_pos = l.label_pos.get(&label).copied().unwrap_or(l.out.len());
        let rel = target_pos as i32 - pos as i32;
        match &mut l.out[pos] {
            MachInsn::Jmp { target } => *target = rel,
            MachInsn::Jcc { target, .. } => *target = rel,
            MachInsn::BackEdge { target, .. } => *target = rel,
            _ => {}
        }
    }
    Ok(l.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LirMem, Vreg, VregClass};
    use crate::regalloc::allocate;

    #[test]
    fn lowers_the_add_example_to_machine_code() {
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        let lir = vec![
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(0x108),
                size: MemSize::U64,
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(0),
            },
            LirInsn::Alu {
                op: hvm::AluOp::Add,
                dst: v(2),
                src: LirOperand::Vreg(v(1)),
            },
            LirInsn::Store {
                src: v(2),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::IncPc { imm: 4 },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        let code = lower(&lir, &alloc).expect("assignments are complete");
        assert!(matches!(code.last(), Some(MachInsn::Ret)));
        // The PC increment lowers onto %r15 directly, flag-preserving.
        assert!(code.iter().any(|i| matches!(
            i,
            MachInsn::Lea {
                dst: Gpr::R15,
                addr: MemRef {
                    base: Gpr::R15,
                    index: None,
                    disp: 4,
                },
            }
        )));
        // Register-file accesses use %rbp as base.
        assert!(code.iter().any(|i| matches!(
            i,
            MachInsn::Load { addr, .. } if addr.base == Gpr::Rbp && addr.disp == 0x108
        )));
    }

    #[test]
    fn an_unassigned_vreg_is_a_typed_error_not_silent_code() {
        // Hand-build an allocation that forgot v(1): the old behaviour
        // silently substituted %rax; now the translation must be refused so
        // the engine can fall back.
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let mut alloc = allocate(&lir);
        alloc.assignment.remove(&1);
        let err = lower(&lir, &alloc).unwrap_err();
        assert_eq!(err.vreg, 1);
        assert!(err.to_string().contains("v1"));
    }

    #[test]
    fn dead_instructions_are_skipped() {
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        let lir = vec![LirInsn::MovImm { dst: v(0), imm: 7 }, LirInsn::Ret];
        let alloc = allocate(&lir);
        let code = lower(&lir, &alloc).expect("assignments are complete");
        assert_eq!(code.len(), 1, "only the Ret survives");
    }

    #[test]
    fn labels_resolve_to_relative_targets() {
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::Test {
                a: v(0),
                b: LirOperand::Vreg(v(0)),
            },
            LirInsn::Jcc {
                cond: hvm::Cond::Eq,
                label: 0,
            },
            LirInsn::SetPcImm { imm: 0x1000 },
            LirInsn::Label { id: 0 },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        let code = lower(&lir, &alloc).expect("assignments are complete");
        let jcc_pos = code
            .iter()
            .position(|i| matches!(i, MachInsn::Jcc { .. }))
            .unwrap();
        if let MachInsn::Jcc { target, .. } = code[jcc_pos] {
            let dest = (jcc_pos as i32 + target) as usize;
            assert!(matches!(code[dest], MachInsn::Ret));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn spilled_two_address_destinations_are_stored_back() {
        // Regression: a CmovCc (or any read-modify-write form) whose
        // destination spilled must write the scratch register back to the
        // spill slot — including when the conditional move is not taken,
        // since the reload preserved the old value.  Saturate the pool so
        // the late-defined destination spills.
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        let n = crate::lir::GPR_POOL.len() as u32;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
        }
        lir.push(LirInsn::MovImm { dst: v(n), imm: 99 });
        lir.push(LirInsn::Test {
            a: v(0),
            b: LirOperand::Vreg(v(0)),
        });
        lir.push(LirInsn::CmovCc {
            cond: hvm::Cond::Ne,
            dst: v(n),
            src: v(1),
        });
        for i in 0..=n {
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert!(
            matches!(alloc.assignment[&n], crate::regalloc::Assignment::Spill(_)),
            "the CmovCc destination must have spilled for this regression"
        );
        let code = lower(&lir, &alloc).expect("assignments are complete");
        let cmov_pos = code
            .iter()
            .position(|i| matches!(i, MachInsn::CmovCc { .. }))
            .unwrap();
        assert!(
            matches!(
                code[cmov_pos + 1],
                MachInsn::Store { addr, .. } if addr.base == Gpr::Rbp && addr.disp < 0
            ),
            "the spilled CmovCc result must be stored back, got {:?}",
            &code[cmov_pos..cmov_pos + 2]
        );
    }

    #[test]
    fn spilled_values_roundtrip_through_the_spill_area() {
        let v = |id| Vreg {
            id,
            class: VregClass::Gpr,
        };
        // Create enough overlapping live ranges to force spilling, then make
        // sure every value still reaches its store.
        let n = crate::lir::GPR_POOL.len() as u32 + 3;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: 100 + i as u64,
            });
        }
        for i in 0..n {
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert!(alloc.spill_slots > 0);
        let code = lower(&lir, &alloc).expect("assignments are complete");
        // Spill stores target the spill area below the register file.
        assert!(code.iter().any(|i| matches!(
            i,
            MachInsn::Store { addr, .. } if addr.base == Gpr::Rbp && addr.disp < 0
        )));
    }
}
