//! Block-scoped LIR optimisation: the explicit phase between emission and
//! register allocation.
//!
//! The invocation-DAG builder collapses eagerly at every side effect
//! (Fig. 9), so the raw LIR materialises guest state far more often than the
//! program can observe: every flag-setting guest instruction stores NZCV even
//! when the next one overwrites it unread, and values round-trip through the
//! register file (`%rbp`) between adjacent guest instructions.  This module
//! runs the *generic* passes over the finished LIR of one translation unit
//! (a region: a plain basic block, a stitched trace, or a looping region),
//! the slot-aware ones using the regfile-slot metadata classified by
//! [`LirInsn::regfile_store`]/[`LirInsn::regfile_load`], and brackets them
//! with the *idiom layer* ([`crate::idiom`]) when the engine supplies a
//! rule table — pattern rewrites mined from region profiles rather than
//! shape-preserving cleanups.  The full [`optimize`] order:
//!
//! * **Idiom fusion and bulk rewriting** ([`crate::idiom::apply_early`])
//!   run *first*, on the emitter's pristine LIR: compare+branch fusion and
//!   memset-loop widening match the exact instruction shapes the frontend
//!   generators emit, so they must see the unit before batching or
//!   promotion reorders it.
//! * The four generic passes below.
//! * **Address-mode folding** ([`crate::idiom::fold_addressing`]) runs
//!   *between* copy propagation and dead-store elimination: it needs
//!   forwarding and copy propagation to have connected register-file
//!   round-trips into visible `shift/add → memory operand` chains, and the
//!   arithmetic it strands is then swept with everything else.
//!
//! The generic passes:
//!
//! 0. **Lazy-PC batching**: per-instruction `IncPc` updates are deferred to
//!    the next point that can observe the guest PC (faulting accesses,
//!    helper calls, control flow) and discarded at absolute PC writes —
//!    the deferred-PC optimisation every production DBT performs.
//! 1. **Store-to-load forwarding and redundant-load reuse** (forward
//!    pass): a regfile load whose slot value is already available — from an
//!    earlier store *or* an earlier load — is rewritten to reuse the
//!    virtual register (or immediate), cutting the round-trip through the
//!    register file.  A *32-bit* load whose low-half slot was covered by
//!    a 64-bit store forwards too, with the mask made explicit (a `MovZx`
//!    of the stored register, or the truncated immediate) — the W-register
//!    read of an X-register write, counted separately as
//!    [`OptStats::partial_forwarded`].
//! 2. **Copy propagation** (forward pass): pure-source uses of a `MovReg`
//!    destination are rewritten to the copy's origin, so the `MovReg`s pass
//!    1 just produced (and the emitter's own copy chains) become dead and
//!    the allocator's iterative DCE sweeps them away entirely.
//! 3. **Dead regfile-store elimination** (backward pass): a regfile store
//!    dies when a later store fully covers the same slot bytes before
//!    anything can observe them.  This deletes the NZCV materialisation
//!    chains the `set_nzcv_*` generators emit (the value chains feeding the
//!    dead stores are then swept by the register allocator's iterative DCE).
//!
//! # Safety conditions — what counts as an observer of a regfile slot
//!
//! The dead-store pass resets its state at every instruction for which
//! [`LirInsn::observes_regfile`] holds, and the value-tracking passes at
//! every [`LirInsn::invalidates_regfile_values`] instruction (a strict
//! subset: an instruction that can only *fault* — a guest-memory load —
//! pins live stores for fault precision but cannot rewrite a slot, so
//! known values survive it).  The observers:
//!
//! * **guest-memory accesses** (loads included) — they can fault, and fault
//!   delivery must see a precise register file;
//! * **helper calls** — helpers read and write the register file;
//! * **`Ret`, `Jmp`, `Jcc`, `Label`** — block exits and intra-block control
//!   flow.  A mid-block `Ret` is a superblock *side-exit stub*; treating it
//!   as an observer is what keeps every slot conservatively live at side-exit
//!   boundaries (an equivalence-test invariant).  The passes are
//!   deliberately straight-line and do not reason across joins;
//! * **ports, interrupts, syscalls, TLB flushes** — hypervisor round-trips;
//! * **address escapes** — `Lea` of a regfile slot or an indexed regfile
//!   operand make aliasing untrackable.
//!
//! [`LirInsn::TraceEdge`] is *not* an observer: it marks the boundary between
//! stitched constituents inside one superblock, and the cross-constituent
//! NZCV death across it is the main superblock payoff.
//!
//! # Loop soundness: pinning, promotion and reconciliation
//!
//! A looping region closes its loop with a [`LirInsn::BackEdge`] to a
//! `Label` bound at the loop header.  Both are observers, so by default the
//! slot passes *pin* every slot architecturally current across the
//! back-edge: forwarding facts and coverage intervals meet the loop with
//! empty state, which is the sound meet of "first entry" (nothing known)
//! and "around the loop" (whatever iteration N left).  Pinning keeps
//! straight-line precision inside the body while staying exact at every
//! iteration boundary, fault point and side exit — but it also re-loads and
//! re-stores every hot slot once per iteration.
//!
//! The **loop-carried promotion pass** (run when the engine enables it)
//! lifts the hottest slots out of that round-trip under an explicit
//! *carrier-invariant* contract:
//!
//! * Each promoted slot gets a fresh **carrier** virtual register, loaded
//!   from the slot in a *preheader* at the very start of the unit (which is
//!   also what hoists loop-invariant loads above the header: a slot only
//!   read inside the loop costs one entry load instead of one per
//!   iteration).  Entry-position definition gives carriers first claim on
//!   the allocator's linear scan, so they live in host registers for the
//!   whole unit.
//! * Inside the loop span, loads of a promoted slot become register moves
//!   of the carrier and stores become moves *into* the carrier (deferred
//!   stores).  Outside the span, stores are kept and additionally refresh
//!   the carrier.  The invariant: **at every instruction boundary the
//!   carrier equals the slot's architectural value**, while the slot's
//!   memory may lag for *dirty* slots (those stored inside the loop).
//! * **Reconciliation** restores memory wherever the dispatcher can look:
//!   compensation stores (carrier → slot) are inserted before *every*
//!   `Ret` in the unit — side-exit stubs and the loop-exit path alike —
//!   and the `BackEdge` is flagged `reconcile`, which makes a loop-exit
//!   poll (IRQ preemption, SMC discard, trip-limit yield) fall through
//!   into those stores instead of returning directly.  Fault delivery
//!   cannot run a stub, so the engine also records the dirty
//!   (slot, carrier) pairs per region and materialises them from the
//!   host registers before delivering a data abort — the carrier
//!   invariant makes that write-back exact at any faulting instruction.
//! * Promotion refuses units containing helper calls, ports, interrupts,
//!   syscalls, TLB flushes, dynamic regfile addressing or regfile address
//!   escapes (those channels read or write slots directly), and slots
//!   with any non-64-bit store, any XMM access, or any access not at the
//!   slot's own offset.  A guest-memory *store* through a computed
//!   address is deliberately **not** a barrier: the register file is
//!   host-mapped, and a guest store that aliases it is non-architectural
//!   by contract — the relaxed observer rule that makes deferral useful.
//!
//! Forwarding additionally requires value identity: only exact
//! 64-bit-to-64-bit slot matches are forwarded (partial-width forwarding
//! would need masking), a slot entry dies when an overlapping store rewrites
//! any of its bytes, and an entry whose forwarded virtual register is later
//! redefined (two-address mutation) is dropped.  Forwarding never removes
//! the store itself, so a fault between the store and a forwarded consumer
//! still finds the slot architecturally current.  Whether a killed *store*
//! is safe is purely a question for pass 2's observer analysis: a store is
//! only deleted when its covering store lands before any possible fault
//! point, so no execution can observe the gap.

use crate::lir::{LirBase, LirInsn, LirMem, RegFileAccess, Vreg, VregClass};
use hvm::MemSize;
use std::collections::HashMap;

/// Maximum slots promoted to loop-carried host registers per unit.  This is
/// only an upper bound on ambition: the actual carrier count is settled by
/// *trial allocation* — promotion is retried with fewer carriers until the
/// real register allocator reports no more spills than the unpromoted unit
/// (see [`promote_loop_slots`]), so a fat loop body that already saturates
/// the pool simply gets no carriers instead of a spill storm.
const MAX_PROMOTED_SLOTS: usize = 6;

/// Maximum *dirty* promoted slots (stored inside the loop, so they need
/// compensation stores on every exit path and fault-time materialisation).
const MAX_DIRTY_SLOTS: usize = 4;

/// What the optimiser did to one translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Regfile stores deleted because a later store fully covered the slot
    /// before any observer.
    pub dead_stores: u32,
    /// Regfile loads rewritten into register moves / immediates.
    pub forwarded_loads: u32,
    /// Partial-width forwards (subset of `forwarded_loads`): 32-bit loads
    /// satisfied by the low half of a 64-bit store with an explicit mask.
    pub partial_forwarded: u32,
    /// Register-copy uses folded away by straight-line copy propagation
    /// (each is one operand rewritten through a `MovReg`; fully propagated
    /// copies are then swept by the allocator's iterative DCE).
    pub copies_folded: u32,
    /// `IncPc` updates deleted by lazy-PC batching (deferred to the next
    /// point that can observe the guest PC, or discarded at an absolute PC
    /// write).
    pub pc_coalesced: u32,
    /// Slots promoted to loop-carried carrier registers by the promotion
    /// pass (dirty and read-only alike).
    pub promoted_slots: u32,
    /// Per-iteration regfile loads of promoted slots rewritten to carrier
    /// moves — the loads hoisted out of the loop body into the preheader.
    pub hoisted_loads: u32,
    /// Vector-register forwards: `LoadXmm`s satisfied from an earlier
    /// `StoreXmm`/`LoadXmm` (or a GPR value) without a regfile round-trip,
    /// plus GPR loads satisfied from a vector store.
    pub fp_forwarded: u32,
    /// Dirty promoted slots: (regfile byte offset, carrier vreg).  The
    /// engine resolves the carriers to host registers after allocation and
    /// materialises them before fault delivery.
    pub promoted: Vec<(i32, Vreg)>,
    /// Per-rule idiom recogniser counters (see [`crate::idiom`]): rewrites
    /// and candidates, zero when no rule table was supplied.
    pub idioms: crate::idiom::IdiomStats,
}

/// Runs the block-scoped passes over one translation unit, in order: the
/// idiom layer's branch fusion and bulk-move rewriting first (when an
/// `idioms` table is supplied — they match the emitter's pristine LIR
/// shapes, so they must see the unit before anything reorders it), then
/// lazy-PC batching, loop-carried slot promotion (when `promote`, so the
/// carrier moves it plants feed the later passes), store-to-load forwarding
/// (so forwarded loads no longer pin the stores they used to read), copy
/// propagation (folding the `MovReg`s promotion and forwarding just
/// produced), the idiom layer's address-mode folding (which needs
/// forwarding and copy propagation to have connected register-file
/// round-trips into visible register chains), and dead-store elimination.
pub fn optimize(
    lir: &mut Vec<LirInsn>,
    promote: bool,
    idioms: Option<&crate::idiom::RuleTable>,
) -> OptStats {
    let mut stats = OptStats::default();
    if let Some(table) = idioms {
        crate::idiom::apply_early(lir, table, &mut stats.idioms);
    }
    coalesce_pc_updates(lir, &mut stats);
    let carriers = if promote {
        promote_loop_slots(lir, &mut stats)
    } else {
        Vec::new()
    };
    forward_stores_to_loads(lir, &mut stats);
    propagate_copies(lir, &mut stats, &carriers);
    if let Some(table) = idioms {
        crate::idiom::fold_addressing(lir, table, &mut stats.idioms);
    }
    eliminate_dead_stores(lir, &mut stats);
    stats
}

/// Lazy-PC batching (pass 0): the emitter advances the guest PC after every
/// guest instruction, but the PC is only *observable* at points that can
/// deliver it — faulting memory accesses, helper calls and other hypervisor
/// round-trips, explicit PC reads, and control flow.  Pending `IncPc`
/// increments are therefore accumulated and materialised as one update at
/// the next such point, and discarded entirely when an absolute PC write
/// (`SetPcImm`/`SetPcReg`/`BackEdge`) overwrites them first.  `IncPc`
/// lowers to a flag-preserving `lea`, so a deferred update can sit between
/// a flag writer and its reader.
fn coalesce_pc_updates(lir: &mut Vec<LirInsn>, stats: &mut OptStats) {
    let mut out = Vec::with_capacity(lir.len());
    let mut pending: u64 = 0;
    let mut pending_insns: u32 = 0;
    for insn in lir.drain(..) {
        match insn {
            LirInsn::IncPc { imm } => {
                pending = pending.wrapping_add(imm);
                pending_insns += 1;
                continue;
            }
            // Absolute PC writes: the pending increments can never be
            // observed (every observation point below would have flushed
            // them first).
            LirInsn::SetPcImm { .. } | LirInsn::SetPcReg { .. } | LirInsn::BackEdge { .. } => {
                stats.pc_coalesced += pending_insns;
                pending = 0;
                pending_insns = 0;
                out.push(insn);
                continue;
            }
            _ => {}
        }
        let observes_pc = insn.may_fault()
            || matches!(
                insn,
                LirInsn::CallHelper { .. }
                    | LirInsn::Int { .. }
                    | LirInsn::In { .. }
                    | LirInsn::Out { .. }
                    | LirInsn::Syscall
                    | LirInsn::TlbFlushAll
                    | LirInsn::TlbFlushPcid
                    | LirInsn::ReadPc { .. }
                    | LirInsn::Ret
                    | LirInsn::Jcc { .. }
                    | LirInsn::Jmp { .. }
                    | LirInsn::Label { .. }
                    | LirInsn::TraceEdge
            );
        if observes_pc && pending != 0 {
            // One batched update replaces `pending_insns` originals.
            stats.pc_coalesced += pending_insns.saturating_sub(1);
            out.push(LirInsn::IncPc { imm: pending });
            pending = 0;
            pending_insns = 0;
        }
        out.push(insn);
    }
    if pending != 0 {
        stats.pc_coalesced += pending_insns.saturating_sub(1);
        out.push(LirInsn::IncPc { imm: pending });
    }
    *lir = out;
}

/// A candidate slot's access profile, collected over the whole unit.
#[derive(Debug, Clone, Copy, Default)]
struct SlotProfile {
    /// Accesses inside the loop span (the promotion payoff).
    loop_accesses: u32,
    /// Loads inside the loop span.  A loaded slot's carrier *substitutes*
    /// for the body register the load would have produced, so it adds almost
    /// no register pressure; a store-only slot's carrier (the flags-register
    /// shape) is a register held live across the whole loop purely for
    /// deferral, so it ranks behind every loaded slot.
    loop_loads: u32,
    /// Stored inside the loop span — needs compensation + fault sync.
    dirty: bool,
    /// Disqualified: a non-U64 store, an XMM access, or an access not at
    /// the slot's own offset touched its bytes.
    disqualified: bool,
}

/// Loop-carried register promotion and invariant hoisting (see the module
/// docs for the contract).  Rewrites the unit in place; records the dirty
/// (slot, carrier) pairs in [`OptStats::promoted`] for the engine's
/// fault-time materialisation, and returns every carrier vreg so the later
/// copy-propagation pass can keep its hands off them.
///
/// Carrier count is settled by trial allocation: the most ambitious
/// promotion whose post-pass unit the real allocator can hold without more
/// spill slots than the unpromoted unit wins.  A spilled carrier is never
/// merely slow — every deferred store it absorbed becomes a spill-slot
/// round-trip — so the pass prices each candidate set against
/// [`crate::regalloc::allocate`] rather than guessing from instruction
/// counts.
fn promote_loop_slots(lir: &mut Vec<LirInsn>, stats: &mut OptStats) -> Vec<Vreg> {
    // Locate the loop: exactly one back-edge whose header label precedes it.
    let mut back_edge = None;
    for (i, insn) in lir.iter().enumerate() {
        if let LirInsn::BackEdge { label, .. } = insn {
            if back_edge.is_some() {
                return Vec::new(); // multiple loops in one unit: stay pinned
            }
            back_edge = Some((i, *label));
        }
    }
    let Some((be, header_label)) = back_edge else {
        return Vec::new();
    };
    let Some(header) = lir
        .iter()
        .position(|i| matches!(i, LirInsn::Label { id } if *id == header_label))
    else {
        return Vec::new();
    };
    if header >= be {
        return Vec::new();
    }

    // Unit-wide disqualifiers: channels that read or write the register
    // file outside classified fixed-slot accesses.  A guest-memory *store*
    // is deliberately absent — the relaxed observer rule (module docs).
    let dynamic_regfile = |m: &LirMem| matches!(m.base, LirBase::RegFile) && m.index.is_some();
    for insn in lir.iter() {
        match insn {
            LirInsn::CallHelper { .. }
            | LirInsn::Int { .. }
            | LirInsn::In { .. }
            | LirInsn::Out { .. }
            | LirInsn::Syscall
            | LirInsn::TlbFlushAll
            | LirInsn::TlbFlushPcid => return Vec::new(),
            LirInsn::Lea { addr, .. } if matches!(addr.base, LirBase::RegFile) => {
                return Vec::new()
            }
            LirInsn::Load { addr, .. }
            | LirInsn::LoadSx { addr, .. }
            | LirInsn::LoadXmm { addr, .. }
            | LirInsn::Store { addr, .. }
            | LirInsn::StoreImm { addr, .. }
            | LirInsn::StoreXmm { addr, .. }
                if dynamic_regfile(addr) =>
            {
                return Vec::new()
            }
            _ => {}
        }
    }

    // Collect every fixed regfile access and profile candidate slots.  A
    // candidate is keyed by the offset of its U64 stores/loads; any
    // overlapping access that is an XMM access, a non-U64 store, or not at
    // the slot's own offset disqualifies it.
    let mut profiles: HashMap<i32, SlotProfile> = HashMap::new();
    let mut accesses: Vec<(RegFileAccess, bool, bool, bool)> = Vec::new(); // (acc, xmm, store, in_span)
    for (i, insn) in lir.iter().enumerate() {
        let in_span = i > header && i < be;
        let xmm = matches!(insn, LirInsn::LoadXmm { .. } | LirInsn::StoreXmm { .. });
        if let Some(acc) = insn.regfile_store() {
            accesses.push((acc, xmm, true, in_span));
        }
        if let Some(acc) = insn.regfile_load() {
            accesses.push((acc, xmm, false, in_span));
        }
    }
    for &(acc, xmm, _, _) in &accesses {
        // U64 GPR accesses at their own offset seed candidates; loads
        // narrower than the slot are allowed (rewritten with an explicit
        // extension), narrow stores are not (they would merge bytes).
        if !xmm && acc.size == MemSize::U64 {
            profiles.entry(acc.offset).or_default();
        }
    }
    for &(acc, xmm, store, in_span) in &accesses {
        for (&off, p) in profiles.iter_mut() {
            let slot = RegFileAccess {
                offset: off,
                size: MemSize::U64,
            };
            if !acc.overlaps(&slot) {
                continue;
            }
            if xmm || acc.offset != off || (store && acc.size != MemSize::U64) {
                p.disqualified = true;
                continue;
            }
            if in_span {
                p.loop_accesses += 1;
                if store {
                    p.dirty = true;
                } else {
                    p.loop_loads += 1;
                }
            }
        }
    }

    // Select the hottest candidates, deterministically: slots *loaded* in
    // the span first (their carriers take over the body ranges the loads
    // fed, costing almost nothing), then by access count, then offset.
    // Store-only slots rank last — a deferral-only carrier is a register
    // held hostage for the whole loop.
    let mut candidates: Vec<(i32, SlotProfile)> = profiles
        .into_iter()
        .filter(|(_, p)| !p.disqualified && p.loop_accesses > 0)
        .collect();
    candidates.sort_by(|a, b| {
        (b.1.loop_loads > 0)
            .cmp(&(a.1.loop_loads > 0))
            .then(b.1.loop_accesses.cmp(&a.1.loop_accesses))
            .then(a.0.cmp(&b.0))
    });
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut next_id = 0u32;
    let mut scratch = Vec::with_capacity(4);
    for insn in lir.iter() {
        scratch.clear();
        insn.uses(&mut scratch);
        if let Some(d) = insn.def() {
            scratch.push(d);
        }
        for v in &scratch {
            next_id = next_id.max(v.id + 1);
        }
    }
    // Price the unpromoted unit once, then grow the carrier set greedily:
    // each candidate (in priority order) is kept only if the allocator can
    // hold the unit with it added at no more spill slots than the
    // unpromoted unit (usually zero), so promotion never *introduces*
    // spills, while a unit that spills regardless is not denied carriers
    // that fit.  Per-candidate trials matter because pressure is local: a
    // hot slot whose carrier would be live through the body's worst window
    // can fail while a cooler slot whose loads already span that window
    // substitutes for free.
    let base_spills = trial_spills(lir.clone(), &[]);
    let mut promoted: Vec<(i32, Vreg, bool)> = Vec::new(); // (offset, carrier, dirty)
    let mut dirty_count = 0usize;
    let mut id = next_id;
    for &(off, p) in &candidates {
        if promoted.len() >= MAX_PROMOTED_SLOTS {
            break;
        }
        if p.dirty && dirty_count >= MAX_DIRTY_SLOTS {
            continue;
        }
        promoted.push((
            off,
            Vreg {
                id,
                class: VregClass::Gpr,
            },
            p.dirty,
        ));
        id += 1;
        let mut rewritten = lir.clone();
        let mut trial = OptStats::default();
        apply_promotion(&mut rewritten, &promoted, header, be, &mut trial);
        let carriers: Vec<Vreg> = promoted.iter().map(|p| p.1).collect();
        if trial_spills(rewritten, &carriers) > base_spills {
            promoted.pop();
        } else if p.dirty {
            dirty_count += 1;
        }
    }
    if promoted.is_empty() {
        return Vec::new();
    }
    apply_promotion(lir, &promoted, header, be, stats);
    promoted.iter().map(|p| p.1).collect()
}

/// Runs the scalar cleanup passes and the real allocator over a throwaway
/// copy of the unit and reports how many spill slots it needs — the cost
/// model behind promotion's trial allocation.  Translation-time cost is a
/// handful of extra linear passes per *looping* unit, which region
/// formation already makes rare.
fn trial_spills(mut lir: Vec<LirInsn>, carriers: &[Vreg]) -> u32 {
    let mut scratch = OptStats::default();
    forward_stores_to_loads(&mut lir, &mut scratch);
    propagate_copies(&mut lir, &mut scratch, carriers);
    eliminate_dead_stores(&mut lir, &mut scratch);
    crate::regalloc::allocate(&lir).spill_slots
}

/// The promotion rewrite for one settled carrier set: preheader entry
/// loads, in-span deferral, out-of-span carrier refresh, compensation
/// stores before every dispatcher return.  `header`/`be` are the loop-span
/// indices in the *incoming* unit.
fn apply_promotion(
    lir: &mut Vec<LirInsn>,
    promoted: &[(i32, Vreg, bool)],
    header: usize,
    be: usize,
    stats: &mut OptStats,
) {
    let carrier_for = |addr: &LirMem, size: MemSize| -> Option<(Vreg, bool)> {
        if !matches!(addr.base, LirBase::RegFile) || addr.index.is_some() {
            return None;
        }
        promoted
            .iter()
            .find(|&&(off, _, _)| off == addr.disp)
            .map(|&(_, c, dirty)| (c, dirty))
            .filter(|_| size.bytes() <= MemSize::U64.bytes())
    };
    let compensation: Vec<LirInsn> = promoted
        .iter()
        .filter(|&&(_, _, dirty)| dirty)
        .map(|&(off, c, _)| LirInsn::Store {
            src: c,
            addr: LirMem::regfile(off),
            size: MemSize::U64,
        })
        .collect();
    let reconcile = !compensation.is_empty();
    let mut out = Vec::with_capacity(lir.len() + promoted.len() * 3);
    for &(off, c, _) in promoted {
        out.push(LirInsn::Load {
            dst: c,
            addr: LirMem::regfile(off),
            size: MemSize::U64,
        });
    }
    for (i, insn) in lir.drain(..).enumerate() {
        let in_span = i > header && i < be;
        match insn {
            LirInsn::Load { dst, addr, size } if carrier_for(&addr, size).is_some() => {
                let (c, _) = carrier_for(&addr, size).unwrap();
                out.push(match size {
                    MemSize::U64 => LirInsn::MovReg { dst, src: c },
                    narrow => LirInsn::MovZx {
                        dst,
                        src: c,
                        size: narrow,
                    },
                });
                if in_span {
                    stats.hoisted_loads += 1;
                }
            }
            LirInsn::LoadSx { dst, addr, size } if carrier_for(&addr, size).is_some() => {
                let (c, _) = carrier_for(&addr, size).unwrap();
                out.push(match size {
                    MemSize::U64 => LirInsn::MovReg { dst, src: c },
                    narrow => LirInsn::MovSx {
                        dst,
                        src: c,
                        size: narrow,
                    },
                });
                if in_span {
                    stats.hoisted_loads += 1;
                }
            }
            LirInsn::Store { src, addr, size } if carrier_for(&addr, size).is_some() => {
                debug_assert_eq!(size, MemSize::U64);
                if !in_span {
                    out.push(LirInsn::Store { src, addr, size });
                }
                out.push(LirInsn::MovReg {
                    dst: c_of(promoted, addr.disp),
                    src,
                });
            }
            LirInsn::StoreImm { imm, addr, size } if carrier_for(&addr, size).is_some() => {
                debug_assert_eq!(size, MemSize::U64);
                if !in_span {
                    out.push(LirInsn::StoreImm { imm, addr, size });
                }
                out.push(LirInsn::MovImm {
                    dst: c_of(promoted, addr.disp),
                    imm,
                });
            }
            LirInsn::BackEdge {
                pc, label, weight, ..
            } => {
                out.push(LirInsn::BackEdge {
                    pc,
                    label,
                    reconcile,
                    weight,
                });
                // The machine's reconcile path *falls through* the yielding
                // back-edge, so the reconcile block must sit directly after
                // it — side-exit stubs (which follow the back-edge in a
                // formed region) are only ever entered by explicit jumps.
                if reconcile {
                    out.extend(compensation.iter().copied());
                    out.push(LirInsn::Ret);
                }
            }
            LirInsn::Ret => {
                out.extend(compensation.iter().copied());
                out.push(LirInsn::Ret);
            }
            other => out.push(other),
        }
    }
    stats.promoted_slots += promoted.len() as u32;
    stats
        .promoted
        .extend(promoted.iter().filter(|p| p.2).map(|&(off, c, _)| (off, c)));
    *lir = out;
}

/// Carrier register of a promoted slot (the rewrite loop's lookups are
/// guarded by `carrier_for`, so the slot is present).
fn c_of(promoted: &[(i32, Vreg, bool)], off: i32) -> Vreg {
    promoted.iter().find(|&&(o, _, _)| o == off).unwrap().1
}

/// The value a tracked slot holds.  `exact` records whether the register
/// equals the slot's zero-extended content (a 64-bit store, or any
/// zero-extending load) or only matches in its low `width` bits (a 32-bit
/// store of a register whose upper half is arbitrary).
#[derive(Debug, Clone, Copy)]
enum Stored {
    Reg {
        v: Vreg,
        exact: bool,
    },
    /// Immediate, pre-masked to the entry's width.
    Imm(u64),
}

/// Forward pass: rewrite regfile loads whose slot value is still available
/// in a virtual register (or as an immediate).  Values become available from
/// *stores* (classic store-to-load forwarding) and from earlier *loads*
/// (redundant-load reuse -- the workhorse inside stitched and looping
/// regions, where the same guest register is otherwise re-loaded in every
/// constituent).  Facts die at [`LirInsn::invalidates_regfile_values`]
/// instructions; in particular a guest-memory *load* (which can fault but
/// cannot rewrite a slot) keeps them alive, which is what lets forwarding
/// survive the guest loads inside a hot loop body.
fn forward_stores_to_loads(lir: &mut [LirInsn], stats: &mut OptStats) {
    // offset -> (width, value): `value` describes the slot's content over
    // `width` bytes, per the `Stored` semantics above.
    let mut slots: HashMap<i32, (MemSize, Stored)> = HashMap::new();
    for insn in lir.iter_mut() {
        // The fact this instruction newly establishes, installed only after
        // the invalidation steps below (so it is not killed by its own
        // definition).
        let mut new_fact: Option<(i32, MemSize, Stored)> = None;
        // Rewrite first: the load observes slot state from *before* this
        // instruction executes.
        if let LirInsn::Load {
            dst,
            addr,
            size: size @ (MemSize::U32 | MemSize::U64),
        } = *insn
        {
            if let Some(acc) = insn.regfile_load() {
                debug_assert_eq!(acc.offset, addr.disp);
                match (slots.get(&acc.offset).copied(), size) {
                    // Exact-width register match: the tracked value IS the
                    // loaded value (U64 entries are always exact; a U32
                    // entry must be, or the upper bits would differ).
                    (Some((MemSize::U64, Stored::Reg { v, .. })), MemSize::U64)
                    | (Some((MemSize::U32, Stored::Reg { v, exact: true })), MemSize::U32)
                        if v.class == VregClass::Gpr =>
                    {
                        *insn = LirInsn::MovReg { dst, src: v };
                        stats.forwarded_loads += 1;
                    }
                    // Cross-file forward: the slot's 64-bit value lives in a
                    // vector register's low lane (a U64 entry, or the first
                    // eight little-endian bytes of a U128 entry).
                    (Some((MemSize::U64 | MemSize::U128, Stored::Reg { v, .. })), MemSize::U64)
                        if v.class == VregClass::Xmm =>
                    {
                        *insn = LirInsn::XmmToGpr { dst, src: v };
                        stats.fp_forwarded += 1;
                    }
                    // Exact-width low-bits match (a 32-bit store of a
                    // 64-bit register): the zero-extension is made explicit.
                    (Some((MemSize::U32, Stored::Reg { v, exact: false })), MemSize::U32) => {
                        *insn = LirInsn::MovZx {
                            dst,
                            src: v,
                            size: MemSize::U32,
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    // Partial width: a 32-bit load of a 64-bit slot's low
                    // half (the W-register read of an X-register write)
                    // forwards with the zero-extension mask made explicit.
                    // Little-endian low half == same offset.
                    (Some((MemSize::U64, Stored::Reg { v, .. })), MemSize::U32)
                        if v.class == VregClass::Gpr =>
                    {
                        *insn = LirInsn::MovZx {
                            dst,
                            src: v,
                            size: MemSize::U32,
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    (Some((MemSize::U64, Stored::Imm(imm))), MemSize::U64)
                    | (Some((MemSize::U32, Stored::Imm(imm))), MemSize::U32) => {
                        *insn = LirInsn::MovImm { dst, imm };
                        stats.forwarded_loads += 1;
                    }
                    (Some((MemSize::U64, Stored::Imm(imm))), MemSize::U32) => {
                        *insn = LirInsn::MovImm {
                            dst,
                            imm: imm & MemSize::U32.mask(),
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    // Unforwardable (no entry, or an entry narrower than the
                    // load): the load itself now makes the slot's value
                    // available for later readers.
                    _ => {
                        new_fact = Some((
                            acc.offset,
                            size,
                            Stored::Reg {
                                v: dst,
                                exact: true,
                            },
                        ));
                    }
                }
            }
        }
        // Vector loads forward the same way: a matching vector entry becomes
        // a register move (the U64 form of `MovXmm` zeroes the upper lane,
        // exactly like the load it replaces), and a 64-bit GPR entry crosses
        // the file with a `movq`-style transfer.
        if let LirInsn::LoadXmm { dst, addr: _, size } = *insn {
            if let Some(acc) = insn.regfile_load() {
                match (slots.get(&acc.offset).copied(), size) {
                    // A U128 entry covers any load width at the slot; a U64
                    // entry only a U64 load (its upper lane is unspecified).
                    (
                        Some((MemSize::U128, Stored::Reg { v, .. })),
                        sz @ (MemSize::U64 | MemSize::U128),
                    )
                    | (Some((MemSize::U64, Stored::Reg { v, .. })), sz @ MemSize::U64)
                        if v.class == VregClass::Xmm =>
                    {
                        *insn = LirInsn::MovXmm {
                            dst,
                            src: v,
                            size: sz,
                        };
                        stats.fp_forwarded += 1;
                    }
                    (Some((MemSize::U64, Stored::Reg { v, exact: true })), MemSize::U64)
                        if v.class == VregClass::Gpr =>
                    {
                        *insn = LirInsn::GprToXmm { dst, src: v };
                        stats.fp_forwarded += 1;
                    }
                    _ if matches!(size, MemSize::U64 | MemSize::U128) => {
                        new_fact = Some((
                            acc.offset,
                            size,
                            Stored::Reg {
                                v: dst,
                                exact: true,
                            },
                        ));
                    }
                    _ => {}
                }
            }
        }
        if insn.invalidates_regfile_values() {
            slots.clear();
        } else if let Some(acc) = insn.regfile_store() {
            // Any overlapping byte is rewritten: drop stale entries.
            slots.retain(|&off, &mut (sz, _)| {
                !acc.overlaps(&RegFileAccess {
                    offset: off,
                    size: sz,
                })
            });
            match (&*insn, acc.size) {
                (LirInsn::Store { src, .. }, MemSize::U64) => {
                    new_fact = Some((
                        acc.offset,
                        MemSize::U64,
                        Stored::Reg {
                            v: *src,
                            exact: true,
                        },
                    ));
                }
                // A 32-bit store truncates: only the low bits match.
                (LirInsn::Store { src, .. }, MemSize::U32) => {
                    new_fact = Some((
                        acc.offset,
                        MemSize::U32,
                        Stored::Reg {
                            v: *src,
                            exact: false,
                        },
                    ));
                }
                (LirInsn::StoreImm { imm, .. }, sz @ (MemSize::U32 | MemSize::U64)) => {
                    new_fact = Some((acc.offset, sz, Stored::Imm(*imm & sz.mask())));
                }
                // A vector store leaves the slot's value in the source
                // vector register: U128 covers the whole entry, U64 just the
                // low lane (`exact: false` records the unspecified upper
                // lane, though no vector rewrite consults it).
                (LirInsn::StoreXmm { src, .. }, sz @ (MemSize::U64 | MemSize::U128)) => {
                    new_fact = Some((
                        acc.offset,
                        sz,
                        Stored::Reg {
                            v: *src,
                            exact: sz == MemSize::U128,
                        },
                    ));
                }
                // Narrower-than-32-bit stores only invalidate.
                _ => {}
            }
        }
        // A redefined virtual register no longer holds the stored value
        // (two-address ALU/vector operations mutate in place).
        if let Some(d) = insn.def() {
            slots.retain(|_, (_, s)| !matches!(s, Stored::Reg { v, .. } if *v == d));
        }
        if let Some((off, width, value)) = new_fact {
            slots.insert(off, (width, value));
        }
    }
}

/// Straight-line copy propagation: rewrites pure-source uses of a `MovReg`
/// destination to the copy's origin, so the forwarding pass's `MovReg`s
/// (and the emitter's own copy chains) become dead and the allocator's
/// iterative DCE can sweep them.
///
/// The copy map is invalidated conservatively:
///
/// * any definition of a register drops entries it keys *or* feeds (a
///   redefined origin no longer holds the copied value; two-address ALU
///   mutation is a definition);
/// * `Label` clears the map — the passes are straight-line and do not
///   reason across join points (a forward `Jcc`/`Jmp` leaves the
///   fall-through state intact; its target label is where states merge and
///   reset);
/// * only GPR-to-GPR copies are tracked, and chains are collapsed at record
///   time (`dst -> root(src)`), so a rewrite never exposes a new map key.
///
/// Destination operands of read-modify-write instructions are never
/// rewritten ([`LirInsn::replace_pure_uses`] skips them by construction).
///
/// `pinned` holds the promotion pass's carrier registers: a copy *keyed* by
/// a carrier is never recorded.  Folding one would rewrite the carrier's
/// readers — above all the compensation stores — to the copied value,
/// leaving the carrier's own update dead; DCE would then sweep it and
/// fault-time materialisation would write a stale register back to the
/// slot.  The carrier invariant (carrier == architectural slot value at
/// every instruction boundary) must survive every later pass.
fn propagate_copies(lir: &mut [LirInsn], stats: &mut OptStats, pinned: &[Vreg]) {
    let mut copies: HashMap<Vreg, Vreg> = HashMap::new();
    for insn in lir.iter_mut() {
        // Rewrite first: the instruction reads register state from *before*
        // it executes.  One traversal substitutes every pending copy (the
        // map is flat, so a single lookup per operand suffices).
        if !copies.is_empty() {
            stats.copies_folded += insn.map_pure_uses(&mut |v| copies.get(&v).copied());
        }
        if matches!(insn, LirInsn::Label { .. }) {
            copies.clear();
            continue;
        }
        if let Some(d) = insn.def() {
            copies.retain(|&k, &mut v| k != d && v != d);
        }
        if let LirInsn::MovReg { dst, src } = *insn {
            if dst.class == VregClass::Gpr
                && src.class == VregClass::Gpr
                && dst != src
                && !pinned.contains(&dst)
            {
                // `src` was already rewritten to its root above, so the map
                // stays flat: no value is ever another entry's key.
                copies.insert(dst, src);
            }
        }
    }
}

/// Backward pass: delete regfile stores whose every byte is rewritten by
/// later stores before any observer or load can see them.
fn eliminate_dead_stores(lir: &mut Vec<LirInsn>, stats: &mut OptStats) {
    // Disjoint, sorted byte intervals of the regfile that are fully
    // overwritten later in the unit with no intervening observer.
    let mut covered: Vec<(i32, i32)> = Vec::new();
    let mut dead = vec![false; lir.len()];
    for (i, insn) in lir.iter().enumerate().rev() {
        if insn.observes_regfile() {
            covered.clear();
            continue;
        }
        if let Some(acc) = insn.regfile_load() {
            subtract_interval(&mut covered, acc.start(), acc.end());
            continue;
        }
        if let Some(acc) = insn.regfile_store() {
            if is_covered(&covered, acc.start(), acc.end()) {
                dead[i] = true;
                stats.dead_stores += 1;
            } else {
                add_interval(&mut covered, acc.start(), acc.end());
            }
        }
    }
    let mut idx = 0;
    lir.retain(|_| {
        let keep = !dead[idx];
        idx += 1;
        keep
    });
}

/// True when `[start, end)` lies entirely inside the covered set (the set is
/// disjoint and sorted, so containment means containment in one interval).
fn is_covered(covered: &[(i32, i32)], start: i32, end: i32) -> bool {
    covered.iter().any(|&(s, e)| s <= start && end <= e)
}

/// Adds `[start, end)` to the covered set, merging adjacent intervals.
fn add_interval(covered: &mut Vec<(i32, i32)>, start: i32, end: i32) {
    let mut new_s = start;
    let mut new_e = end;
    covered.retain(|&(s, e)| {
        if s <= new_e && new_s <= e {
            new_s = new_s.min(s);
            new_e = new_e.max(e);
            false
        } else {
            true
        }
    });
    let pos = covered.partition_point(|&(s, _)| s < new_s);
    covered.insert(pos, (new_s, new_e));
}

/// Removes `[start, end)` from the covered set (a load punches a hole: those
/// bytes are observed before any later covering store).
fn subtract_interval(covered: &mut Vec<(i32, i32)>, start: i32, end: i32) {
    let mut result = Vec::with_capacity(covered.len() + 1);
    for &(s, e) in covered.iter() {
        if e <= start || end <= s {
            result.push((s, e));
        } else {
            if s < start {
                result.push((s, start));
            }
            if end < e {
                result.push((end, e));
            }
        }
    }
    *covered = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LirMem, LirOperand, VregClass};
    use hvm::{AluOp, Cond};

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    fn store(src: u32, disp: i32) -> LirInsn {
        LirInsn::Store {
            src: v(src),
            addr: LirMem::regfile(disp),
            size: MemSize::U64,
        }
    }

    fn load(dst: u32, disp: i32) -> LirInsn {
        LirInsn::Load {
            dst: v(dst),
            addr: LirMem::regfile(disp),
            size: MemSize::U64,
        }
    }

    const NZCV: i32 = 256;

    #[test]
    fn covered_store_is_deleted() {
        // Two NZCV stores with only pure data flow between: the first dies.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 4 },
            store(0, NZCV),
            LirInsn::MovImm { dst: v(1), imm: 8 },
            store(1, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.dead_stores, 1);
        let stores: Vec<_> = lir
            .iter()
            .filter(|i| matches!(i, LirInsn::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 1, "only the final NZCV store survives");
        assert!(matches!(stores[0], LirInsn::Store { src, .. } if *src == v(1)));
    }

    #[test]
    fn load_between_stores_keeps_the_first_alive() {
        let mut lir = vec![store(0, NZCV), load(1, NZCV), store(2, NZCV), LirInsn::Ret];
        let stats = optimize(&mut lir, false, None);
        // The load is forwarded (it reads v0), but the *observing* effect of
        // the original read no longer exists once forwarded — and then the
        // first store is indeed covered.  Use an unforwardable offset to pin
        // the unforwarded case instead:
        assert_eq!(stats.forwarded_loads, 1);
        // Unforwardable load (the *high* half of the stored slot — only the
        // low half forwards partially) must keep the store alive.
        let mut lir2 = vec![
            store(0, NZCV),
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(NZCV + 4),
                size: MemSize::U32,
            },
            store(2, NZCV),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2, false, None);
        assert_eq!(stats2.forwarded_loads, 0);
        assert_eq!(stats2.dead_stores, 0, "an observed store must survive");
    }

    #[test]
    fn partial_width_loads_forward_with_a_mask() {
        // The W-register case: a 32-bit load of a slot a 64-bit store just
        // wrote forwards as an explicit zero-extension of the stored value
        // (or the truncated immediate).
        let mut lir = vec![
            store(0, 8),
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            LirInsn::StoreImm {
                imm: 0xAAAA_BBBB_CCCC_DDDD,
                addr: LirMem::regfile(16),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(2),
                addr: LirMem::regfile(16),
                size: MemSize::U32,
            },
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.forwarded_loads, 2);
        assert_eq!(stats.partial_forwarded, 2);
        assert!(
            lir.iter().any(|i| matches!(
                i,
                LirInsn::MovZx { dst, src, size: MemSize::U32 } if *dst == v(1) && *src == v(0)
            )),
            "the register case masks through MovZx"
        );
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::MovImm { dst, imm: 0xCCCC_DDDD } if *dst == v(2))),
            "the immediate case truncates at translation time"
        );
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::Load { .. })));
    }

    #[test]
    fn partial_forwarding_respects_width_and_offset_limits() {
        // A 32-bit store does not satisfy a 64-bit load, and entries die at
        // observers exactly like full-width ones.
        let mut lir = vec![
            LirInsn::Store {
                src: v(0),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir, false, None).forwarded_loads, 0);

        let mut lir2 = vec![
            store(0, 8),
            LirInsn::CallHelper { helper: 1 },
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir2, false, None).forwarded_loads, 0);
    }

    #[test]
    fn back_edges_pin_slots_like_any_observer() {
        // Loop soundness: the BackEdge (and the loop-header label) are
        // observers — a store before the back-edge survives even though the
        // next iteration's store would cover it, and forwarding state never
        // crosses the loop boundary.
        let mut lir = vec![
            LirInsn::Label { id: 0 },
            load(1, NZCV),
            store(0, NZCV),
            LirInsn::BackEdge {
                pc: 0x1000,
                label: 0,
                reconcile: false,
                weight: 1,
            },
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.dead_stores, 0, "the back-edge pins the store");
        assert_eq!(
            stats.forwarded_loads, 0,
            "forwarding facts must not survive the loop boundary"
        );
    }

    #[test]
    fn observers_pin_earlier_stores() {
        let observers = [
            LirInsn::CallHelper { helper: 1 },
            LirInsn::Ret,
            LirInsn::Label { id: 0 },
            LirInsn::Jcc {
                cond: Cond::Eq,
                label: 0,
            },
            LirInsn::Store {
                src: v(9),
                addr: LirMem::vreg(v(8), 0),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(9),
                addr: LirMem::vreg(v(8), 0),
                size: MemSize::U64,
            },
        ];
        for obs in observers {
            let mut lir = vec![store(0, NZCV), obs, store(1, NZCV), LirInsn::Ret];
            let stats = optimize(&mut lir, false, None);
            assert_eq!(stats.dead_stores, 0, "{obs:?} must pin the store");
        }
    }

    #[test]
    fn trace_edge_is_transparent_for_cross_constituent_death() {
        // A stitched superblock boundary: the NZCV store of constituent A is
        // covered by constituent B's store — the big superblock win.
        let mut lir = vec![
            store(0, NZCV),
            LirInsn::SetPcImm { imm: 0x2000 },
            LirInsn::TraceEdge,
            LirInsn::IncPc { imm: 4 },
            store(1, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.dead_stores, 1);
    }

    #[test]
    fn side_exit_stub_keeps_all_slots_live() {
        // The exact stitched-conditional shape the emitter produces: the Ret
        // side exit (and its Jcc/Label) must pin every earlier slot.
        let mut lir = vec![
            store(0, NZCV),
            LirInsn::Test {
                a: v(1),
                b: LirOperand::Vreg(v(1)),
            },
            LirInsn::SetPcImm { imm: 0x3000 },
            LirInsn::Jcc {
                cond: Cond::Ne,
                label: 0,
            },
            LirInsn::Ret,
            LirInsn::Label { id: 0 },
            LirInsn::SetPcImm { imm: 0x2000 },
            LirInsn::TraceEdge,
            store(2, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(
            stats.dead_stores, 0,
            "slots must stay live across a side-exit stub"
        );
    }

    #[test]
    fn partial_overlap_is_not_coverage() {
        // A U64 store at offset 8 does not cover a U128 store at 0.
        let mut lir = vec![
            LirInsn::StoreXmm {
                src: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U128,
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.dead_stores, 0);
        // But two U64 stores at 0 and 8 together cover the U128 store.
        let mut lir2 = vec![
            LirInsn::StoreXmm {
                src: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U128,
            },
            store(1, 0),
            store(2, 8),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2, false, None);
        assert_eq!(stats2.dead_stores, 1, "merged intervals cover the vector");
        assert!(!lir2.iter().any(|i| matches!(i, LirInsn::StoreXmm { .. })));
    }

    #[test]
    fn forwarding_rewrites_loads_to_moves() {
        let mut lir = vec![
            store(0, 8),
            LirInsn::StoreImm {
                imm: 42,
                addr: LirMem::regfile(16),
                size: MemSize::U64,
            },
            load(1, 8),
            load(2, 16),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.forwarded_loads, 2);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovReg { dst, src } if *dst == v(1) && *src == v(0))));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovImm { dst, imm: 42 } if *dst == v(2))));
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::Load { .. })));
    }

    #[test]
    fn forwarding_state_dies_at_observers_and_redefinitions() {
        // Helper call clears the map.
        let mut lir = vec![
            store(0, 8),
            LirInsn::CallHelper { helper: 1 },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir, false, None).forwarded_loads, 0);

        // Redefining the stored vreg (two-address mutation) drops the entry.
        let mut lir2 = vec![
            store(0, 8),
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(0),
                src: LirOperand::Imm(1),
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir2, false, None).forwarded_loads, 0);

        // An overlapping store of another width invalidates without
        // replacing.
        let mut lir3 = vec![
            store(0, 8),
            LirInsn::StoreImm {
                imm: 7,
                addr: LirMem::regfile(12),
                size: MemSize::U32,
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir3, false, None).forwarded_loads, 0);
    }

    #[test]
    fn forwarding_enables_dead_store_elimination() {
        // The canonical chained-ALU shape: store x1, (loads of x1 forwarded),
        // store x1 again — the first store then dies.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            store(0, 8), // x1 <- v0
            load(1, 8),  // forwarded to v0
            LirInsn::MovReg {
                dst: v(2),
                src: v(1),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(2),
                src: LirOperand::Imm(3),
            },
            store(2, 8), // x1 <- v2: covers the first store
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.forwarded_loads, 1);
        assert_eq!(stats.dead_stores, 1);
    }

    #[test]
    fn copy_chains_collapse_to_their_origin() {
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(1),
            },
            store(2, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert!(stats.copies_folded >= 2, "both copy uses fold");
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(0))),
            "the store reads the origin, not the copy chain"
        );
        // The second copy's source collapsed to the root, keeping the map flat.
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovReg { dst, src } if *dst == v(2) && *src == v(0))));
    }

    #[test]
    fn copy_propagation_stops_at_redefinitions() {
        // Redefining the *origin* kills the entry: the copy holds the old
        // value.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(0),
                src: LirOperand::Imm(1),
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.copies_folded, 0);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));

        // Redefining the *copy* (two-address mutation) kills it too, and the
        // mutated destination is never rewritten.
        let mut lir2 = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(1),
                src: LirOperand::Imm(3),
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2, false, None);
        assert_eq!(stats2.copies_folded, 0);
        assert!(lir2
            .iter()
            .any(|i| matches!(i, LirInsn::Alu { dst, .. } if *dst == v(1))));
        assert!(lir2
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));
    }

    #[test]
    fn copy_propagation_resets_at_labels() {
        // Straight-line only: a label is a join point where copy facts die.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Label { id: 0 },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.copies_folded, 0);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));
    }

    #[test]
    fn forwarded_moves_are_folded_into_their_consumers() {
        // The satellite's target shape: forwarding produces a MovReg, copy
        // propagation folds its use, and the MovReg is left dead for DCE.
        let mut lir = vec![
            store(0, 8),  // x1 <- v0
            load(1, 8),   // forwarded: MovReg v1 <- v0
            store(1, 16), // x2 <- v1, folded to v0
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.forwarded_loads, 1);
        assert!(stats.copies_folded >= 1);
        assert!(
            lir.iter().any(|i| matches!(
                i,
                LirInsn::Store { src, addr, .. } if *src == v(0) && addr.disp == 16
            )),
            "the consumer reads the forwarded origin directly"
        );
    }

    #[test]
    fn interval_helpers() {
        let mut c = Vec::new();
        add_interval(&mut c, 0, 8);
        add_interval(&mut c, 16, 24);
        assert_eq!(c, vec![(0, 8), (16, 24)]);
        add_interval(&mut c, 8, 16); // bridges the gap
        assert_eq!(c, vec![(0, 24)]);
        assert!(is_covered(&c, 4, 20));
        assert!(!is_covered(&c, 4, 32));
        subtract_interval(&mut c, 8, 16);
        assert_eq!(c, vec![(0, 8), (16, 24)]);
        assert!(!is_covered(&c, 4, 12));
        assert!(is_covered(&c, 16, 24));
    }

    fn xv(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Xmm,
        }
    }

    /// A minimal looping unit: `Label 0; <body>; BackEdge; Ret`.
    fn loop_unit(body: Vec<LirInsn>) -> Vec<LirInsn> {
        let mut lir = vec![LirInsn::Label { id: 0 }];
        lir.extend(body);
        lir.push(LirInsn::BackEdge {
            pc: 0x1000,
            label: 0,
            reconcile: false,
            weight: 1,
        });
        lir.push(LirInsn::Ret);
        lir
    }

    fn backedge_pos(lir: &[LirInsn]) -> usize {
        lir.iter()
            .position(|i| matches!(i, LirInsn::BackEdge { .. }))
            .expect("unit keeps its back-edge")
    }

    #[test]
    fn promotion_hoists_loads_and_defers_stores() {
        // x1 += 1 each trip: the slot is promoted dirty — the in-loop
        // load/store round-trip disappears, the back-edge reconciles, and a
        // compensation store precedes the dispatcher return.
        let mut lir = loop_unit(vec![
            load(1, 8),
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(1),
                src: LirOperand::Imm(1),
            },
            store(1, 8),
        ]);
        let stats = optimize(&mut lir, true, None);
        assert_eq!(stats.promoted_slots, 1);
        assert_eq!(stats.hoisted_loads, 1);
        assert_eq!(stats.promoted.len(), 1, "one dirty slot to materialise");
        assert_eq!(stats.promoted[0].0, 8);
        assert!(
            matches!(lir[0], LirInsn::Load { addr, size: MemSize::U64, .. } if addr.disp == 8),
            "the carrier is loaded in the preheader: {:?}",
            lir[0]
        );
        let be = backedge_pos(&lir);
        assert!(
            matches!(
                lir[be],
                LirInsn::BackEdge {
                    reconcile: true,
                    ..
                }
            ),
            "a dirty promotion must reconcile at the back-edge"
        );
        let header = lir
            .iter()
            .position(|i| matches!(i, LirInsn::Label { .. }))
            .unwrap();
        assert!(
            !lir[header..be].iter().any(|i| {
                matches!(i, LirInsn::Load { addr, .. } | LirInsn::Store { addr, .. } if addr.disp == 8)
            }),
            "no regfile round-trip survives inside the loop"
        );
        assert!(
            lir[be..].iter().any(
                |i| matches!(i, LirInsn::Store { addr, size: MemSize::U64, .. } if addr.disp == 8)
            ),
            "the compensation store materialises the slot before Ret"
        );
    }

    #[test]
    fn clean_promotion_skips_reconciliation() {
        // A loop-invariant operand: promoted clean, so the back-edge yield
        // path stays the cheap one and nothing is materialised anywhere.
        let mut lir = loop_unit(vec![
            load(1, 8),
            load(2, 8),
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(2),
                src: LirOperand::Vreg(v(1)),
            },
        ]);
        let stats = optimize(&mut lir, true, None);
        assert_eq!(stats.promoted_slots, 1);
        assert_eq!(stats.hoisted_loads, 2);
        assert!(stats.promoted.is_empty(), "clean slots need no fault map");
        let be = backedge_pos(&lir);
        assert!(matches!(
            lir[be],
            LirInsn::BackEdge {
                reconcile: false,
                ..
            }
        ));
        assert!(
            !lir.iter()
                .any(|i| matches!(i, LirInsn::Store { addr, .. } if addr.disp == 8)),
            "a never-written slot gets no compensation store"
        );
    }

    #[test]
    fn narrow_loads_extend_from_the_carrier() {
        // W-register and sign-extending reads of a promoted slot become
        // explicit extensions of the carrier instead of memory loads.
        let mut lir = loop_unit(vec![
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            LirInsn::LoadSx {
                dst: v(2),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            store(3, 8),
        ]);
        let stats = optimize(&mut lir, true, None);
        assert_eq!(stats.promoted_slots, 1);
        assert_eq!(stats.hoisted_loads, 2);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovZx { dst, size: MemSize::U32, .. } if *dst == v(1))));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovSx { dst, size: MemSize::U32, .. } if *dst == v(2))));
    }

    #[test]
    fn promotion_disqualifiers() {
        // A helper call anywhere in the unit pins every slot.
        let mut lir = loop_unit(vec![
            load(1, 8),
            LirInsn::CallHelper { helper: 1 },
            store(1, 8),
        ]);
        assert_eq!(optimize(&mut lir, true, None).promoted_slots, 0);

        // Dynamically-indexed regfile access pins every slot.
        let mut lir2 = loop_unit(vec![
            load(1, 8),
            LirInsn::Load {
                dst: v(2),
                addr: LirMem {
                    base: LirBase::RegFile,
                    index: Some((v(1), 3)),
                    disp: 0,
                },
                size: MemSize::U64,
            },
            store(1, 8),
        ]);
        assert_eq!(optimize(&mut lir2, true, None).promoted_slots, 0);

        // An XMM access overlapping one slot pins only that slot.
        let mut lir3 = loop_unit(vec![
            load(1, 8),
            LirInsn::StoreXmm {
                src: xv(9),
                addr: LirMem::regfile(8),
                size: MemSize::U128,
            },
            load(2, 64),
            store(2, 64),
        ]);
        let stats3 = optimize(&mut lir3, true, None);
        assert_eq!(stats3.promoted_slots, 1, "only the GPR-pure slot promotes");
        assert_eq!(stats3.promoted[0].0, 64);

        // A narrow store merges bytes into the slot: disqualified.
        let mut lir4 = loop_unit(vec![
            load(1, 8),
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
        ]);
        assert_eq!(optimize(&mut lir4, true, None).promoted_slots, 0);

        // With the pass gated off nothing is rewritten.
        let mut lir5 = loop_unit(vec![load(1, 8), store(1, 8)]);
        let stats5 = optimize(&mut lir5, false, None);
        assert_eq!(stats5.promoted_slots, 0);
        assert_eq!(stats5.hoisted_loads, 0);
        assert!(matches!(
            lir5[backedge_pos(&lir5)],
            LirInsn::BackEdge {
                reconcile: false,
                ..
            }
        ));
    }

    #[test]
    fn promotion_respects_slot_and_dirty_caps() {
        // Five dirty candidates (two accesses each) and two clean ones (one
        // access): the dirty cap admits four, then the slot cap fills with
        // the clean slots.  The bodies are tiny, so trial allocation never
        // vetoes — the caps alone decide.
        let mut body = Vec::new();
        for off in [0, 8, 16, 24, 32] {
            body.push(load(1, off));
            body.push(store(1, off));
        }
        body.push(load(2, 40));
        body.push(load(3, 48));
        let mut lir = loop_unit(body);
        let stats = optimize(&mut lir, true, None);
        assert_eq!(stats.promoted_slots, MAX_PROMOTED_SLOTS as u32);
        assert_eq!(stats.promoted.len(), MAX_DIRTY_SLOTS);
        let dirty: Vec<i32> = stats.promoted.iter().map(|p| p.0).collect();
        assert_eq!(dirty, vec![0, 8, 16, 24], "hottest-first, offset tie-break");
    }

    #[test]
    fn xmm_stores_forward_to_xmm_loads() {
        // Full-width and low-lane vector reuse; a narrower vector load must
        // NOT forward (MovXmm's write shape would widen it).
        let mut lir = vec![
            LirInsn::StoreXmm {
                src: xv(0),
                addr: LirMem::regfile(64),
                size: MemSize::U128,
            },
            LirInsn::LoadXmm {
                dst: xv(1),
                addr: LirMem::regfile(64),
                size: MemSize::U128,
            },
            LirInsn::LoadXmm {
                dst: xv(2),
                addr: LirMem::regfile(64),
                size: MemSize::U64,
            },
            LirInsn::LoadXmm {
                dst: xv(3),
                addr: LirMem::regfile(64),
                size: MemSize::U32,
            },
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.fp_forwarded, 2);
        assert_eq!(stats.forwarded_loads, 0, "vector reuse is counted apart");
        assert!(lir.iter().any(|i| matches!(
            i,
            LirInsn::MovXmm { dst, src, size: MemSize::U128 } if *dst == xv(1) && *src == xv(0)
        )));
        assert!(lir.iter().any(|i| matches!(
            i,
            LirInsn::MovXmm { dst, src, size: MemSize::U64 } if *dst == xv(2) && *src == xv(0)
        )));
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::LoadXmm { dst, .. } if *dst == xv(3))),
            "narrow vector loads keep the memory access"
        );
    }

    #[test]
    fn cross_file_forwarding_uses_transfer_moves() {
        // GPR store feeding a vector load (FMOV D<n>, X<n> idiom) and a
        // vector store feeding a GPR load both forward through explicit
        // cross-file transfers.
        let mut lir = vec![
            store(0, 64),
            LirInsn::LoadXmm {
                dst: xv(1),
                addr: LirMem::regfile(64),
                size: MemSize::U64,
            },
            LirInsn::StoreXmm {
                src: xv(2),
                addr: LirMem::regfile(80),
                size: MemSize::U64,
            },
            load(3, 80),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir, false, None);
        assert_eq!(stats.fp_forwarded, 2);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::GprToXmm { dst, src } if *dst == xv(1) && *src == v(0))));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::XmmToGpr { dst, src } if *dst == v(3) && *src == xv(2))));
    }
}
