//! Block-scoped LIR optimisation: the explicit phase between emission and
//! register allocation.
//!
//! The invocation-DAG builder collapses eagerly at every side effect
//! (Fig. 9), so the raw LIR materialises guest state far more often than the
//! program can observe: every flag-setting guest instruction stores NZCV even
//! when the next one overwrites it unread, and values round-trip through the
//! register file (`%rbp`) between adjacent guest instructions.  This module
//! runs four passes over the finished LIR of one translation unit (a
//! region: a plain basic block, a stitched trace, or a looping region),
//! the slot-aware ones using the regfile-slot metadata classified by
//! [`LirInsn::regfile_store`]/[`LirInsn::regfile_load`]:
//!
//! 0. **Lazy-PC batching**: per-instruction `IncPc` updates are deferred to
//!    the next point that can observe the guest PC (faulting accesses,
//!    helper calls, control flow) and discarded at absolute PC writes —
//!    the deferred-PC optimisation every production DBT performs.
//! 1. **Store-to-load forwarding and redundant-load reuse** (forward
//!    pass): a regfile load whose slot value is already available — from an
//!    earlier store *or* an earlier load — is rewritten to reuse the
//!    virtual register (or immediate), cutting the round-trip through the
//!    register file.  A *32-bit* load whose low-half slot was covered by
//!    a 64-bit store forwards too, with the mask made explicit (a `MovZx`
//!    of the stored register, or the truncated immediate) — the W-register
//!    read of an X-register write, counted separately as
//!    [`OptStats::partial_forwarded`].
//! 2. **Copy propagation** (forward pass): pure-source uses of a `MovReg`
//!    destination are rewritten to the copy's origin, so the `MovReg`s pass
//!    1 just produced (and the emitter's own copy chains) become dead and
//!    the allocator's iterative DCE sweeps them away entirely.
//! 3. **Dead regfile-store elimination** (backward pass): a regfile store
//!    dies when a later store fully covers the same slot bytes before
//!    anything can observe them.  This deletes the NZCV materialisation
//!    chains the `set_nzcv_*` generators emit (the value chains feeding the
//!    dead stores are then swept by the register allocator's iterative DCE).
//!
//! # Safety conditions — what counts as an observer of a regfile slot
//!
//! The dead-store pass resets its state at every instruction for which
//! [`LirInsn::observes_regfile`] holds, and the value-tracking passes at
//! every [`LirInsn::invalidates_regfile_values`] instruction (a strict
//! subset: an instruction that can only *fault* — a guest-memory load —
//! pins live stores for fault precision but cannot rewrite a slot, so
//! known values survive it).  The observers:
//!
//! * **guest-memory accesses** (loads included) — they can fault, and fault
//!   delivery must see a precise register file;
//! * **helper calls** — helpers read and write the register file;
//! * **`Ret`, `Jmp`, `Jcc`, `Label`** — block exits and intra-block control
//!   flow.  A mid-block `Ret` is a superblock *side-exit stub*; treating it
//!   as an observer is what keeps every slot conservatively live at side-exit
//!   boundaries (an equivalence-test invariant).  The passes are
//!   deliberately straight-line and do not reason across joins;
//! * **ports, interrupts, syscalls, TLB flushes** — hypervisor round-trips;
//! * **address escapes** — `Lea` of a regfile slot or an indexed regfile
//!   operand make aliasing untrackable.
//!
//! [`LirInsn::TraceEdge`] is *not* an observer: it marks the boundary between
//! stitched constituents inside one superblock, and the cross-constituent
//! NZCV death across it is the main superblock payoff.
//!
//! # Loop soundness
//!
//! A looping region closes its loop with a [`LirInsn::BackEdge`] to a
//! `Label` bound at the loop header.  Both are observers, so the slot
//! passes *pin* every slot architecturally current across the back-edge:
//! forwarding facts and coverage intervals meet the loop with empty state,
//! which is the sound meet of "first entry" (nothing known) and "around the
//! loop" (whatever iteration N left).  Iterating the passes to a cyclic
//! fixpoint instead would require phi-style reasoning (a value forwarded
//! around the back-edge is only available on the looping path, not on
//! first entry) for a payoff the side-exit pinning mostly cancels; pinning
//! keeps straight-line precision inside the body while staying exact at
//! every iteration boundary, fault point and side exit.
//!
//! Forwarding additionally requires value identity: only exact
//! 64-bit-to-64-bit slot matches are forwarded (partial-width forwarding
//! would need masking), a slot entry dies when an overlapping store rewrites
//! any of its bytes, and an entry whose forwarded virtual register is later
//! redefined (two-address mutation) is dropped.  Forwarding never removes
//! the store itself, so a fault between the store and a forwarded consumer
//! still finds the slot architecturally current.  Whether a killed *store*
//! is safe is purely a question for pass 2's observer analysis: a store is
//! only deleted when its covering store lands before any possible fault
//! point, so no execution can observe the gap.

use crate::lir::{LirInsn, RegFileAccess, Vreg, VregClass};
use hvm::MemSize;
use std::collections::HashMap;

/// What the optimiser did to one translation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Regfile stores deleted because a later store fully covered the slot
    /// before any observer.
    pub dead_stores: u32,
    /// Regfile loads rewritten into register moves / immediates.
    pub forwarded_loads: u32,
    /// Partial-width forwards (subset of `forwarded_loads`): 32-bit loads
    /// satisfied by the low half of a 64-bit store with an explicit mask.
    pub partial_forwarded: u32,
    /// Register-copy uses folded away by straight-line copy propagation
    /// (each is one operand rewritten through a `MovReg`; fully propagated
    /// copies are then swept by the allocator's iterative DCE).
    pub copies_folded: u32,
    /// `IncPc` updates deleted by lazy-PC batching (deferred to the next
    /// point that can observe the guest PC, or discarded at an absolute PC
    /// write).
    pub pc_coalesced: u32,
}

/// Runs the block-scoped passes over one translation unit, in order:
/// store-to-load forwarding first (so forwarded loads no longer pin the
/// stores they used to read), then copy propagation (folding the `MovReg`s
/// forwarding just produced), then dead-store elimination.
pub fn optimize(lir: &mut Vec<LirInsn>) -> OptStats {
    let mut stats = OptStats::default();
    coalesce_pc_updates(lir, &mut stats);
    forward_stores_to_loads(lir, &mut stats);
    propagate_copies(lir, &mut stats);
    eliminate_dead_stores(lir, &mut stats);
    stats
}

/// Lazy-PC batching (pass 0): the emitter advances the guest PC after every
/// guest instruction, but the PC is only *observable* at points that can
/// deliver it — faulting memory accesses, helper calls and other hypervisor
/// round-trips, explicit PC reads, and control flow.  Pending `IncPc`
/// increments are therefore accumulated and materialised as one update at
/// the next such point, and discarded entirely when an absolute PC write
/// (`SetPcImm`/`SetPcReg`/`BackEdge`) overwrites them first.  `IncPc`
/// lowers to a flag-preserving `lea`, so a deferred update can sit between
/// a flag writer and its reader.
fn coalesce_pc_updates(lir: &mut Vec<LirInsn>, stats: &mut OptStats) {
    let mut out = Vec::with_capacity(lir.len());
    let mut pending: u64 = 0;
    let mut pending_insns: u32 = 0;
    for insn in lir.drain(..) {
        match insn {
            LirInsn::IncPc { imm } => {
                pending = pending.wrapping_add(imm);
                pending_insns += 1;
                continue;
            }
            // Absolute PC writes: the pending increments can never be
            // observed (every observation point below would have flushed
            // them first).
            LirInsn::SetPcImm { .. } | LirInsn::SetPcReg { .. } | LirInsn::BackEdge { .. } => {
                stats.pc_coalesced += pending_insns;
                pending = 0;
                pending_insns = 0;
                out.push(insn);
                continue;
            }
            _ => {}
        }
        let observes_pc = insn.may_fault()
            || matches!(
                insn,
                LirInsn::CallHelper { .. }
                    | LirInsn::Int { .. }
                    | LirInsn::In { .. }
                    | LirInsn::Out { .. }
                    | LirInsn::Syscall
                    | LirInsn::TlbFlushAll
                    | LirInsn::TlbFlushPcid
                    | LirInsn::ReadPc { .. }
                    | LirInsn::Ret
                    | LirInsn::Jcc { .. }
                    | LirInsn::Jmp { .. }
                    | LirInsn::Label { .. }
                    | LirInsn::TraceEdge
            );
        if observes_pc && pending != 0 {
            // One batched update replaces `pending_insns` originals.
            stats.pc_coalesced += pending_insns.saturating_sub(1);
            out.push(LirInsn::IncPc { imm: pending });
            pending = 0;
            pending_insns = 0;
        }
        out.push(insn);
    }
    if pending != 0 {
        stats.pc_coalesced += pending_insns.saturating_sub(1);
        out.push(LirInsn::IncPc { imm: pending });
    }
    *lir = out;
}

/// The value a tracked slot holds.  `exact` records whether the register
/// equals the slot's zero-extended content (a 64-bit store, or any
/// zero-extending load) or only matches in its low `width` bits (a 32-bit
/// store of a register whose upper half is arbitrary).
#[derive(Debug, Clone, Copy)]
enum Stored {
    Reg {
        v: Vreg,
        exact: bool,
    },
    /// Immediate, pre-masked to the entry's width.
    Imm(u64),
}

/// Forward pass: rewrite regfile loads whose slot value is still available
/// in a virtual register (or as an immediate).  Values become available from
/// *stores* (classic store-to-load forwarding) and from earlier *loads*
/// (redundant-load reuse -- the workhorse inside stitched and looping
/// regions, where the same guest register is otherwise re-loaded in every
/// constituent).  Facts die at [`LirInsn::invalidates_regfile_values`]
/// instructions; in particular a guest-memory *load* (which can fault but
/// cannot rewrite a slot) keeps them alive, which is what lets forwarding
/// survive the guest loads inside a hot loop body.
fn forward_stores_to_loads(lir: &mut [LirInsn], stats: &mut OptStats) {
    // offset -> (width, value): `value` describes the slot's content over
    // `width` bytes, per the `Stored` semantics above.
    let mut slots: HashMap<i32, (MemSize, Stored)> = HashMap::new();
    for insn in lir.iter_mut() {
        // The fact this instruction newly establishes, installed only after
        // the invalidation steps below (so it is not killed by its own
        // definition).
        let mut new_fact: Option<(i32, MemSize, Stored)> = None;
        // Rewrite first: the load observes slot state from *before* this
        // instruction executes.
        if let LirInsn::Load {
            dst,
            addr,
            size: size @ (MemSize::U32 | MemSize::U64),
        } = *insn
        {
            if let Some(acc) = insn.regfile_load() {
                debug_assert_eq!(acc.offset, addr.disp);
                match (slots.get(&acc.offset).copied(), size) {
                    // Exact-width register match: the tracked value IS the
                    // loaded value (U64 entries are always exact; a U32
                    // entry must be, or the upper bits would differ).
                    (Some((MemSize::U64, Stored::Reg { v, .. })), MemSize::U64)
                    | (Some((MemSize::U32, Stored::Reg { v, exact: true })), MemSize::U32) => {
                        *insn = LirInsn::MovReg { dst, src: v };
                        stats.forwarded_loads += 1;
                    }
                    // Exact-width low-bits match (a 32-bit store of a
                    // 64-bit register): the zero-extension is made explicit.
                    (Some((MemSize::U32, Stored::Reg { v, exact: false })), MemSize::U32) => {
                        *insn = LirInsn::MovZx {
                            dst,
                            src: v,
                            size: MemSize::U32,
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    // Partial width: a 32-bit load of a 64-bit slot's low
                    // half (the W-register read of an X-register write)
                    // forwards with the zero-extension mask made explicit.
                    // Little-endian low half == same offset.
                    (Some((MemSize::U64, Stored::Reg { v, .. })), MemSize::U32) => {
                        *insn = LirInsn::MovZx {
                            dst,
                            src: v,
                            size: MemSize::U32,
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    (Some((MemSize::U64, Stored::Imm(imm))), MemSize::U64)
                    | (Some((MemSize::U32, Stored::Imm(imm))), MemSize::U32) => {
                        *insn = LirInsn::MovImm { dst, imm };
                        stats.forwarded_loads += 1;
                    }
                    (Some((MemSize::U64, Stored::Imm(imm))), MemSize::U32) => {
                        *insn = LirInsn::MovImm {
                            dst,
                            imm: imm & MemSize::U32.mask(),
                        };
                        stats.forwarded_loads += 1;
                        stats.partial_forwarded += 1;
                    }
                    // Unforwardable (no entry, or an entry narrower than the
                    // load): the load itself now makes the slot's value
                    // available for later readers.
                    _ => {
                        new_fact = Some((
                            acc.offset,
                            size,
                            Stored::Reg {
                                v: dst,
                                exact: true,
                            },
                        ));
                    }
                }
            }
        }
        if insn.invalidates_regfile_values() {
            slots.clear();
        } else if let Some(acc) = insn.regfile_store() {
            // Any overlapping byte is rewritten: drop stale entries.
            slots.retain(|&off, &mut (sz, _)| {
                !acc.overlaps(&RegFileAccess {
                    offset: off,
                    size: sz,
                })
            });
            match (&*insn, acc.size) {
                (LirInsn::Store { src, .. }, MemSize::U64) => {
                    new_fact = Some((
                        acc.offset,
                        MemSize::U64,
                        Stored::Reg {
                            v: *src,
                            exact: true,
                        },
                    ));
                }
                // A 32-bit store truncates: only the low bits match.
                (LirInsn::Store { src, .. }, MemSize::U32) => {
                    new_fact = Some((
                        acc.offset,
                        MemSize::U32,
                        Stored::Reg {
                            v: *src,
                            exact: false,
                        },
                    ));
                }
                (LirInsn::StoreImm { imm, .. }, sz @ (MemSize::U32 | MemSize::U64)) => {
                    new_fact = Some((acc.offset, sz, Stored::Imm(*imm & sz.mask())));
                }
                // A U64 StoreXmm writes the low lane of a vector value;
                // there is no cheap GPR move for it, so it only invalidates.
                // Narrower-than-32-bit stores likewise.
                _ => {}
            }
        }
        // A redefined virtual register no longer holds the stored value
        // (two-address ALU/vector operations mutate in place).
        if let Some(d) = insn.def() {
            slots.retain(|_, (_, s)| !matches!(s, Stored::Reg { v, .. } if *v == d));
        }
        if let Some((off, width, value)) = new_fact {
            slots.insert(off, (width, value));
        }
    }
}

/// Straight-line copy propagation: rewrites pure-source uses of a `MovReg`
/// destination to the copy's origin, so the forwarding pass's `MovReg`s
/// (and the emitter's own copy chains) become dead and the allocator's
/// iterative DCE can sweep them.
///
/// The copy map is invalidated conservatively:
///
/// * any definition of a register drops entries it keys *or* feeds (a
///   redefined origin no longer holds the copied value; two-address ALU
///   mutation is a definition);
/// * `Label` clears the map — the passes are straight-line and do not
///   reason across join points (a forward `Jcc`/`Jmp` leaves the
///   fall-through state intact; its target label is where states merge and
///   reset);
/// * only GPR-to-GPR copies are tracked, and chains are collapsed at record
///   time (`dst -> root(src)`), so a rewrite never exposes a new map key.
///
/// Destination operands of read-modify-write instructions are never
/// rewritten ([`LirInsn::replace_pure_uses`] skips them by construction).
fn propagate_copies(lir: &mut [LirInsn], stats: &mut OptStats) {
    let mut copies: HashMap<Vreg, Vreg> = HashMap::new();
    for insn in lir.iter_mut() {
        // Rewrite first: the instruction reads register state from *before*
        // it executes.  One traversal substitutes every pending copy (the
        // map is flat, so a single lookup per operand suffices).
        if !copies.is_empty() {
            stats.copies_folded += insn.map_pure_uses(&mut |v| copies.get(&v).copied());
        }
        if matches!(insn, LirInsn::Label { .. }) {
            copies.clear();
            continue;
        }
        if let Some(d) = insn.def() {
            copies.retain(|&k, &mut v| k != d && v != d);
        }
        if let LirInsn::MovReg { dst, src } = *insn {
            if dst.class == VregClass::Gpr && src.class == VregClass::Gpr && dst != src {
                // `src` was already rewritten to its root above, so the map
                // stays flat: no value is ever another entry's key.
                copies.insert(dst, src);
            }
        }
    }
}

/// Backward pass: delete regfile stores whose every byte is rewritten by
/// later stores before any observer or load can see them.
fn eliminate_dead_stores(lir: &mut Vec<LirInsn>, stats: &mut OptStats) {
    // Disjoint, sorted byte intervals of the regfile that are fully
    // overwritten later in the unit with no intervening observer.
    let mut covered: Vec<(i32, i32)> = Vec::new();
    let mut dead = vec![false; lir.len()];
    for (i, insn) in lir.iter().enumerate().rev() {
        if insn.observes_regfile() {
            covered.clear();
            continue;
        }
        if let Some(acc) = insn.regfile_load() {
            subtract_interval(&mut covered, acc.start(), acc.end());
            continue;
        }
        if let Some(acc) = insn.regfile_store() {
            if is_covered(&covered, acc.start(), acc.end()) {
                dead[i] = true;
                stats.dead_stores += 1;
            } else {
                add_interval(&mut covered, acc.start(), acc.end());
            }
        }
    }
    let mut idx = 0;
    lir.retain(|_| {
        let keep = !dead[idx];
        idx += 1;
        keep
    });
}

/// True when `[start, end)` lies entirely inside the covered set (the set is
/// disjoint and sorted, so containment means containment in one interval).
fn is_covered(covered: &[(i32, i32)], start: i32, end: i32) -> bool {
    covered.iter().any(|&(s, e)| s <= start && end <= e)
}

/// Adds `[start, end)` to the covered set, merging adjacent intervals.
fn add_interval(covered: &mut Vec<(i32, i32)>, start: i32, end: i32) {
    let mut new_s = start;
    let mut new_e = end;
    covered.retain(|&(s, e)| {
        if s <= new_e && new_s <= e {
            new_s = new_s.min(s);
            new_e = new_e.max(e);
            false
        } else {
            true
        }
    });
    let pos = covered.partition_point(|&(s, _)| s < new_s);
    covered.insert(pos, (new_s, new_e));
}

/// Removes `[start, end)` from the covered set (a load punches a hole: those
/// bytes are observed before any later covering store).
fn subtract_interval(covered: &mut Vec<(i32, i32)>, start: i32, end: i32) {
    let mut result = Vec::with_capacity(covered.len() + 1);
    for &(s, e) in covered.iter() {
        if e <= start || end <= s {
            result.push((s, e));
        } else {
            if s < start {
                result.push((s, start));
            }
            if end < e {
                result.push((end, e));
            }
        }
    }
    *covered = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LirMem, LirOperand, VregClass};
    use hvm::{AluOp, Cond};

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    fn store(src: u32, disp: i32) -> LirInsn {
        LirInsn::Store {
            src: v(src),
            addr: LirMem::regfile(disp),
            size: MemSize::U64,
        }
    }

    fn load(dst: u32, disp: i32) -> LirInsn {
        LirInsn::Load {
            dst: v(dst),
            addr: LirMem::regfile(disp),
            size: MemSize::U64,
        }
    }

    const NZCV: i32 = 256;

    #[test]
    fn covered_store_is_deleted() {
        // Two NZCV stores with only pure data flow between: the first dies.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 4 },
            store(0, NZCV),
            LirInsn::MovImm { dst: v(1), imm: 8 },
            store(1, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.dead_stores, 1);
        let stores: Vec<_> = lir
            .iter()
            .filter(|i| matches!(i, LirInsn::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 1, "only the final NZCV store survives");
        assert!(matches!(stores[0], LirInsn::Store { src, .. } if *src == v(1)));
    }

    #[test]
    fn load_between_stores_keeps_the_first_alive() {
        let mut lir = vec![store(0, NZCV), load(1, NZCV), store(2, NZCV), LirInsn::Ret];
        let stats = optimize(&mut lir);
        // The load is forwarded (it reads v0), but the *observing* effect of
        // the original read no longer exists once forwarded — and then the
        // first store is indeed covered.  Use an unforwardable offset to pin
        // the unforwarded case instead:
        assert_eq!(stats.forwarded_loads, 1);
        // Unforwardable load (the *high* half of the stored slot — only the
        // low half forwards partially) must keep the store alive.
        let mut lir2 = vec![
            store(0, NZCV),
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(NZCV + 4),
                size: MemSize::U32,
            },
            store(2, NZCV),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2);
        assert_eq!(stats2.forwarded_loads, 0);
        assert_eq!(stats2.dead_stores, 0, "an observed store must survive");
    }

    #[test]
    fn partial_width_loads_forward_with_a_mask() {
        // The W-register case: a 32-bit load of a slot a 64-bit store just
        // wrote forwards as an explicit zero-extension of the stored value
        // (or the truncated immediate).
        let mut lir = vec![
            store(0, 8),
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            LirInsn::StoreImm {
                imm: 0xAAAA_BBBB_CCCC_DDDD,
                addr: LirMem::regfile(16),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(2),
                addr: LirMem::regfile(16),
                size: MemSize::U32,
            },
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.forwarded_loads, 2);
        assert_eq!(stats.partial_forwarded, 2);
        assert!(
            lir.iter().any(|i| matches!(
                i,
                LirInsn::MovZx { dst, src, size: MemSize::U32 } if *dst == v(1) && *src == v(0)
            )),
            "the register case masks through MovZx"
        );
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::MovImm { dst, imm: 0xCCCC_DDDD } if *dst == v(2))),
            "the immediate case truncates at translation time"
        );
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::Load { .. })));
    }

    #[test]
    fn partial_forwarding_respects_width_and_offset_limits() {
        // A 32-bit store does not satisfy a 64-bit load, and entries die at
        // observers exactly like full-width ones.
        let mut lir = vec![
            LirInsn::Store {
                src: v(0),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir).forwarded_loads, 0);

        let mut lir2 = vec![
            store(0, 8),
            LirInsn::CallHelper { helper: 1 },
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U32,
            },
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir2).forwarded_loads, 0);
    }

    #[test]
    fn back_edges_pin_slots_like_any_observer() {
        // Loop soundness: the BackEdge (and the loop-header label) are
        // observers — a store before the back-edge survives even though the
        // next iteration's store would cover it, and forwarding state never
        // crosses the loop boundary.
        let mut lir = vec![
            LirInsn::Label { id: 0 },
            load(1, NZCV),
            store(0, NZCV),
            LirInsn::BackEdge {
                pc: 0x1000,
                label: 0,
            },
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.dead_stores, 0, "the back-edge pins the store");
        assert_eq!(
            stats.forwarded_loads, 0,
            "forwarding facts must not survive the loop boundary"
        );
    }

    #[test]
    fn observers_pin_earlier_stores() {
        let observers = [
            LirInsn::CallHelper { helper: 1 },
            LirInsn::Ret,
            LirInsn::Label { id: 0 },
            LirInsn::Jcc {
                cond: Cond::Eq,
                label: 0,
            },
            LirInsn::Store {
                src: v(9),
                addr: LirMem::vreg(v(8), 0),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(9),
                addr: LirMem::vreg(v(8), 0),
                size: MemSize::U64,
            },
        ];
        for obs in observers {
            let mut lir = vec![store(0, NZCV), obs, store(1, NZCV), LirInsn::Ret];
            let stats = optimize(&mut lir);
            assert_eq!(stats.dead_stores, 0, "{obs:?} must pin the store");
        }
    }

    #[test]
    fn trace_edge_is_transparent_for_cross_constituent_death() {
        // A stitched superblock boundary: the NZCV store of constituent A is
        // covered by constituent B's store — the big superblock win.
        let mut lir = vec![
            store(0, NZCV),
            LirInsn::SetPcImm { imm: 0x2000 },
            LirInsn::TraceEdge,
            LirInsn::IncPc { imm: 4 },
            store(1, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.dead_stores, 1);
    }

    #[test]
    fn side_exit_stub_keeps_all_slots_live() {
        // The exact stitched-conditional shape the emitter produces: the Ret
        // side exit (and its Jcc/Label) must pin every earlier slot.
        let mut lir = vec![
            store(0, NZCV),
            LirInsn::Test {
                a: v(1),
                b: LirOperand::Vreg(v(1)),
            },
            LirInsn::SetPcImm { imm: 0x3000 },
            LirInsn::Jcc {
                cond: Cond::Ne,
                label: 0,
            },
            LirInsn::Ret,
            LirInsn::Label { id: 0 },
            LirInsn::SetPcImm { imm: 0x2000 },
            LirInsn::TraceEdge,
            store(2, NZCV),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(
            stats.dead_stores, 0,
            "slots must stay live across a side-exit stub"
        );
    }

    #[test]
    fn partial_overlap_is_not_coverage() {
        // A U64 store at offset 8 does not cover a U128 store at 0.
        let mut lir = vec![
            LirInsn::StoreXmm {
                src: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U128,
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.dead_stores, 0);
        // But two U64 stores at 0 and 8 together cover the U128 store.
        let mut lir2 = vec![
            LirInsn::StoreXmm {
                src: v(0),
                addr: LirMem::regfile(0),
                size: MemSize::U128,
            },
            store(1, 0),
            store(2, 8),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2);
        assert_eq!(stats2.dead_stores, 1, "merged intervals cover the vector");
        assert!(!lir2.iter().any(|i| matches!(i, LirInsn::StoreXmm { .. })));
    }

    #[test]
    fn forwarding_rewrites_loads_to_moves() {
        let mut lir = vec![
            store(0, 8),
            LirInsn::StoreImm {
                imm: 42,
                addr: LirMem::regfile(16),
                size: MemSize::U64,
            },
            load(1, 8),
            load(2, 16),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.forwarded_loads, 2);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovReg { dst, src } if *dst == v(1) && *src == v(0))));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovImm { dst, imm: 42 } if *dst == v(2))));
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::Load { .. })));
    }

    #[test]
    fn forwarding_state_dies_at_observers_and_redefinitions() {
        // Helper call clears the map.
        let mut lir = vec![
            store(0, 8),
            LirInsn::CallHelper { helper: 1 },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir).forwarded_loads, 0);

        // Redefining the stored vreg (two-address mutation) drops the entry.
        let mut lir2 = vec![
            store(0, 8),
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(0),
                src: LirOperand::Imm(1),
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir2).forwarded_loads, 0);

        // An overlapping store of another width invalidates without
        // replacing.
        let mut lir3 = vec![
            store(0, 8),
            LirInsn::StoreImm {
                imm: 7,
                addr: LirMem::regfile(12),
                size: MemSize::U32,
            },
            load(1, 8),
            LirInsn::Ret,
        ];
        assert_eq!(optimize(&mut lir3).forwarded_loads, 0);
    }

    #[test]
    fn forwarding_enables_dead_store_elimination() {
        // The canonical chained-ALU shape: store x1, (loads of x1 forwarded),
        // store x1 again — the first store then dies.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            store(0, 8), // x1 <- v0
            load(1, 8),  // forwarded to v0
            LirInsn::MovReg {
                dst: v(2),
                src: v(1),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(2),
                src: LirOperand::Imm(3),
            },
            store(2, 8), // x1 <- v2: covers the first store
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.forwarded_loads, 1);
        assert_eq!(stats.dead_stores, 1);
    }

    #[test]
    fn copy_chains_collapse_to_their_origin() {
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(1),
            },
            store(2, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert!(stats.copies_folded >= 2, "both copy uses fold");
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(0))),
            "the store reads the origin, not the copy chain"
        );
        // The second copy's source collapsed to the root, keeping the map flat.
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::MovReg { dst, src } if *dst == v(2) && *src == v(0))));
    }

    #[test]
    fn copy_propagation_stops_at_redefinitions() {
        // Redefining the *origin* kills the entry: the copy holds the old
        // value.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(0),
                src: LirOperand::Imm(1),
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.copies_folded, 0);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));

        // Redefining the *copy* (two-address mutation) kills it too, and the
        // mutated destination is never rewritten.
        let mut lir2 = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(1),
                src: LirOperand::Imm(3),
            },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats2 = optimize(&mut lir2);
        assert_eq!(stats2.copies_folded, 0);
        assert!(lir2
            .iter()
            .any(|i| matches!(i, LirInsn::Alu { dst, .. } if *dst == v(1))));
        assert!(lir2
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));
    }

    #[test]
    fn copy_propagation_resets_at_labels() {
        // Straight-line only: a label is a join point where copy facts die.
        let mut lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 5 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Label { id: 0 },
            store(1, 8),
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.copies_folded, 0);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { src, .. } if *src == v(1))));
    }

    #[test]
    fn forwarded_moves_are_folded_into_their_consumers() {
        // The satellite's target shape: forwarding produces a MovReg, copy
        // propagation folds its use, and the MovReg is left dead for DCE.
        let mut lir = vec![
            store(0, 8),  // x1 <- v0
            load(1, 8),   // forwarded: MovReg v1 <- v0
            store(1, 16), // x2 <- v1, folded to v0
            LirInsn::Ret,
        ];
        let stats = optimize(&mut lir);
        assert_eq!(stats.forwarded_loads, 1);
        assert!(stats.copies_folded >= 1);
        assert!(
            lir.iter().any(|i| matches!(
                i,
                LirInsn::Store { src, addr, .. } if *src == v(0) && addr.disp == 16
            )),
            "the consumer reads the forwarded origin directly"
        );
    }

    #[test]
    fn interval_helpers() {
        let mut c = Vec::new();
        add_interval(&mut c, 0, 8);
        add_interval(&mut c, 16, 24);
        assert_eq!(c, vec![(0, 8), (16, 24)]);
        add_interval(&mut c, 8, 16); // bridges the gap
        assert_eq!(c, vec![(0, 24)]);
        assert!(is_covered(&c, 4, 20));
        assert!(!is_covered(&c, 4, 32));
        subtract_interval(&mut c, 8, 16);
        assert_eq!(c, vec![(0, 8), (16, 24)]);
        assert!(!is_covered(&c, 4, 12));
        assert!(is_covered(&c, 16, 24));
    }
}
