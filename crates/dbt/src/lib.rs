//! The online DBT pipeline shared by Captive and the QEMU-style baseline.
//!
//! The paper's online stage (Section 2.3) has four phases, reproduced here as
//! four modules:
//!
//! 1. **Instruction decoding** — performed by the guest model behind the
//!    [`GuestIsa`] trait (the decoder is generated offline in the paper; here
//!    the guest crates provide it).
//! 2. **Translation** ([`emitter`]) — generator functions call into an
//!    invocation-DAG builder; nodes with run-time side effects collapse the
//!    DAG and emit low-level IR ([`lir`]) immediately (Fig. 9).
//! 3. **Register allocation** ([`regalloc`]) — a fast two-pass live-range
//!    allocator that also marks dead instructions.
//! 4. **Instruction encoding** ([`lower`]) — the allocated IR is lowered to
//!    HVM64 machine instructions, relative jumps are patched, and the block
//!    is byte-encoded for the code-size statistics.
//!
//! Translated blocks are kept in a [`cache::CodeCache`] indexed either by
//! guest *physical* address (Captive) or guest *virtual* address (QEMU-style
//! baseline), reproducing the paper's translation-reuse argument
//! (Section 2.6).  Wall-clock time spent in each phase is accumulated in
//! [`timing::PhaseTimers`] for the Fig. 20 experiment.

pub mod cache;
pub mod emitter;
pub mod lir;
pub mod lower;
pub mod regalloc;
pub mod timing;

pub use cache::{
    BlockExit, CacheIndex, CacheStats, ChainLinks, CodeCache, SuperMeta, TranslatedBlock,
};
pub use emitter::{Emitter, Node, NodeId, ValueType};
pub use lir::{LirInsn, Vreg, VregClass};
pub use timing::{Phase, PhaseTimers};

use hvm::MachInsn;
use std::sync::Arc;

/// A guest instruction-set architecture plugged into the DBT.
///
/// In the paper both the decoder and the generator functions for a guest are
/// produced offline from the ADL description; the runtime only sees these two
/// entry points.  The guest crates implement this trait (either with
/// hand-materialised generator functions equivalent to the offline tool's
/// output, or by interpreting ADL-derived generator programs).
pub trait GuestIsa {
    /// A decoded guest instruction.
    type Insn: Clone + std::fmt::Debug;

    /// Decodes the instruction word found at `pc`.  Returns `None` for
    /// undefined encodings (which the hypervisor turns into an UNDEF
    /// exception for the guest).
    fn decode(&self, word: u32, pc: u64) -> Option<Self::Insn>;

    /// Invokes the generator function for `insn`, emitting IR through the
    /// DAG builder.  Returns `true` if the instruction ends the basic block
    /// (branches, exception-raising instructions, ...).
    fn generate(&self, insn: &Self::Insn, emitter: &mut Emitter) -> bool;

    /// Size of one instruction word in bytes (fixed-width ISAs only).
    fn insn_size(&self) -> u64 {
        4
    }
}

/// The output of translating one guest basic block.
#[derive(Debug, Clone)]
pub struct BlockTranslation {
    /// Final host instructions (physical registers, jumps resolved).
    pub code: Arc<Vec<MachInsn>>,
    /// Byte-encoded form of `code` (for size statistics).
    pub encoded: Vec<u8>,
    /// Number of guest instructions covered.
    pub guest_insns: usize,
    /// Number of host instructions after dead-code removal.
    pub host_insns: usize,
    /// Host instructions emitted before register allocation dropped dead ones.
    pub lir_insns: usize,
}

impl BlockTranslation {
    /// Bytes of host code generated per guest instruction (Section 3.4).
    pub fn bytes_per_guest_insn(&self) -> f64 {
        if self.guest_insns == 0 {
            0.0
        } else {
            self.encoded.len() as f64 / self.guest_insns as f64
        }
    }
}
