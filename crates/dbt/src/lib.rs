//! The online DBT pipeline shared by Captive and the QEMU-style baseline.
//!
//! The paper's online stage (Section 2.3) has four phases, reproduced here as
//! four modules:
//!
//! 1. **Instruction decoding** — performed by the guest model behind the
//!    [`GuestIsa`] trait (the decoder is generated offline in the paper; here
//!    the guest crates provide it).
//! 2. **Translation** ([`emitter`]) — generator functions call into an
//!    invocation-DAG builder; nodes with run-time side effects collapse the
//!    DAG and emit low-level IR ([`lir`]) immediately (Fig. 9).  The LIR
//!    keeps the guest register-file slot metadata (offset + width) the
//!    collapse produced, so later passes can reason about slot liveness.
//! 3. **Optimisation** ([`opt`]) — optional block-scoped passes over the
//!    finished LIR: store-to-load forwarding through register-file slots and
//!    dead regfile-store elimination (the dead-flag case), run by engines
//!    that opt in (Captive does; the QEMU-style baseline does not).
//! 4. **Register allocation** ([`regalloc`]) — a fast live-range allocator
//!    with iterative dead-code marking that sweeps the value chains feeding
//!    eliminated stores.
//! 5. **Instruction encoding** ([`lower`]) — the allocated IR is lowered to
//!    HVM64 machine instructions (dead instructions skipped), relative jumps
//!    are patched, and the block is byte-encoded for the code-size
//!    statistics.
//!
//! Every translation is a [`cache::Region`] — 1..N guest basic blocks in one
//! host-code unit — kept in a [`cache::CodeCache`] keyed by (entry physical
//! address, entry virtual class).  Captive leans on the physical component
//! so translations survive guest page-table changes (the paper's
//! translation-reuse argument, Section 2.6); the QEMU-style baseline uses
//! the same structure but flushes it wholesale on translation-state changes.
//! Wall-clock time spent in each phase is accumulated in
//! [`timing::PhaseTimers`] for the Fig. 20 experiment.

pub mod cache;
pub mod emitter;
pub mod idiom;
pub mod lir;
pub mod lower;
pub mod opt;
pub mod regalloc;
pub mod timing;

pub use cache::{
    fnv1a, pack_knobs, BlockExit, CacheIndex, CacheStats, ChainLinks, CodeCache, EntryMode, Region,
    RegionKey, RegionProfile, ReuseCache, ReuseKey, ReuseTemplate,
};
pub use emitter::{Emitter, Node, NodeId, ValueType};
pub use idiom::{IdiomStats, Rule, RuleKind, RuleTable, RULE_COUNT};
pub use lir::{LirInsn, RegFileAccess, Vreg, VregClass};
pub use lower::LowerError;
pub use opt::OptStats;
pub use timing::{Phase, PhaseTimers, TierTimers};

use hvm::MachInsn;
use std::sync::Arc;

/// Runs the shared back half of the pipeline on finished LIR: the optional
/// block-scoped optimiser ([`opt`], when `run_opt`; loop-carried register
/// promotion additionally gated on `promote`), register allocation with
/// iterative DCE, and lowering/encoding.  Both engines call this — Captive
/// with `run_opt`/`promote` from its config, the QEMU-style baseline always
/// without — so the phase and elimination accounting can never desync.
///
/// Fails with a [`LowerError`] when lowering finds a live virtual register
/// with no assignment; the engines respond by discarding the translation and
/// degrading (UNDEF fallback for a plain block, bailout for a formed
/// region), counted in [`PhaseTimers::lower_bailouts`] by the caller.
pub fn finish_translation(
    timers: &mut PhaseTimers,
    mut lir: Vec<LirInsn>,
    run_opt: bool,
    promote: bool,
    idioms: Option<&idiom::RuleTable>,
) -> Result<FinishedTranslation, LowerError> {
    let pre_opt = lir.len();
    let mut dirty_carriers: Vec<(i32, Vreg)> = Vec::new();
    let mut idiom_stats = idiom::IdiomStats::default();
    if run_opt {
        // The optimiser sits between emission and register allocation; its
        // wall-clock cost is accounted to the regalloc phase budget.
        let stats = timers.time(Phase::RegAlloc, || opt::optimize(&mut lir, promote, idioms));
        timers.opt_dead_stores += stats.dead_stores as u64;
        timers.opt_forwarded_loads += stats.forwarded_loads as u64;
        timers.opt_partial_forwarded += stats.partial_forwarded as u64;
        timers.opt_copies_folded += stats.copies_folded as u64;
        timers.opt_promoted_slots += stats.promoted_slots as u64;
        timers.opt_hoisted_loads += stats.hoisted_loads as u64;
        timers.opt_fp_forwarded += stats.fp_forwarded as u64;
        timers.opt_idioms_fused += stats.idioms.total_fused() as u64;
        for i in 0..idiom::RULE_COUNT {
            timers.idiom_hits[i] += stats.idioms.fused[i] as u64;
            timers.idiom_candidates[i] += stats.idioms.candidates[i] as u64;
        }
        idiom_stats = stats.idioms;
        dirty_carriers = stats.promoted;
    }
    let allocation = timers.time(Phase::RegAlloc, || regalloc::allocate(&lir));
    let dce = allocation.dead.iter().filter(|d| **d).count();
    timers.opt_dce_insns += dce as u64;
    // Promotion can grow the unit (preheader loads, reconcile block), so the
    // optimiser's net deletion count saturates at zero rather than going
    // negative.
    let elided = pre_opt.saturating_sub(lir.len()) + dce;
    // Dirty carriers are defined at unit entry, so the linear scan hands
    // them pool registers before anything else can claim one; a spilled
    // carrier would make fault-time materialisation impossible and can only
    // mean a broken invariant.
    let promoted = dirty_carriers
        .into_iter()
        .map(|(off, v)| match allocation.assignment.get(&v.id) {
            Some(regalloc::Assignment::Gpr(g)) => (off, *g),
            other => panic!("promoted carrier {v:?} not in a host register: {other:?}"),
        })
        .collect();
    let code = timers.time(Phase::Encode, || lower::lower(&lir, &allocation))?;
    let encoded = timers.time(Phase::Encode, || hvm::encode::encode_block(&code));
    Ok(FinishedTranslation {
        code,
        encoded,
        elided,
        promoted,
        idioms: idiom_stats,
    })
}

/// The back half of the pipeline's output (see [`finish_translation`]).
#[derive(Debug, Clone)]
pub struct FinishedTranslation {
    /// Final host instructions (physical registers, jumps resolved).
    pub code: Vec<MachInsn>,
    /// Byte-encoded form of `code` (for size statistics).
    pub encoded: Vec<u8>,
    /// LIR instructions eliminated before encoding (optimiser deletions plus
    /// allocator dead-marks).
    pub elided: usize,
    /// Dirty promoted slots: (regfile byte offset, host register holding the
    /// loop-carried value).  On a fault exit — the one path that bypasses the
    /// in-code compensation stores — the engine stores each register back to
    /// its slot before delivering the event, restoring the precise register
    /// file the promotion contract promises (see [`opt`]'s module docs).
    pub promoted: Vec<(i32, hvm::Gpr)>,
    /// Per-rule idiom counters for this translation (see [`idiom`]).
    pub idioms: idiom::IdiomStats,
}

/// A guest instruction-set architecture plugged into the DBT.
///
/// In the paper both the decoder and the generator functions for a guest are
/// produced offline from the ADL description; the runtime only sees these two
/// entry points.  The guest crates implement this trait (either with
/// hand-materialised generator functions equivalent to the offline tool's
/// output, or by interpreting ADL-derived generator programs).
pub trait GuestIsa {
    /// A decoded guest instruction.
    type Insn: Clone + std::fmt::Debug;

    /// Decodes the instruction word found at `pc`.  Returns `None` for
    /// undefined encodings (which the hypervisor turns into an UNDEF
    /// exception for the guest).
    fn decode(&self, word: u32, pc: u64) -> Option<Self::Insn>;

    /// Invokes the generator function for `insn`, emitting IR through the
    /// DAG builder.  Returns `true` if the instruction ends the basic block
    /// (branches, exception-raising instructions, ...).
    fn generate(&self, insn: &Self::Insn, emitter: &mut Emitter) -> bool;

    /// Size of one instruction word in bytes (fixed-width ISAs only).
    fn insn_size(&self) -> u64 {
        4
    }
}

/// The output of translating one guest basic block.
#[derive(Debug, Clone)]
pub struct BlockTranslation {
    /// Final host instructions (physical registers, jumps resolved).
    pub code: Arc<Vec<MachInsn>>,
    /// Byte-encoded form of `code` (for size statistics).
    pub encoded: Vec<u8>,
    /// Number of guest instructions covered.
    pub guest_insns: usize,
    /// Number of host instructions after dead-code removal.
    pub host_insns: usize,
    /// Host instructions emitted before register allocation dropped dead ones.
    pub lir_insns: usize,
}

impl BlockTranslation {
    /// Bytes of host code generated per guest instruction (Section 3.4).
    pub fn bytes_per_guest_insn(&self) -> f64 {
        if self.guest_insns == 0 {
            0.0
        } else {
            self.encoded.len() as f64 / self.guest_insns as f64
        }
    }
}
