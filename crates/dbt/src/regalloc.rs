//! Register allocation over the low-level IR.
//!
//! As in the paper (Section 2.3.3): a forward pass discovers live ranges, a
//! second pass assigns host registers to virtual registers by linear scan
//! (splitting to spill slots when the pool is exhausted), and instructions
//! whose results are never used are marked dead so the encoder skips them.
//! The algorithm favours speed over optimality — it is part of the
//! JIT-latency budget measured in Fig. 20.

use crate::lir::{LirInsn, Vreg, VregClass, GPR_POOL};
use hvm::{Gpr, Xmm};
use std::collections::HashMap;

/// Vector registers available to the allocator (the top two are reserved as
/// spill scratch).
pub const XMM_POOL: [u8; 14] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13];

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// A general-purpose host register.
    Gpr(Gpr),
    /// A vector host register.
    Xmm(Xmm),
    /// A spill slot (index into the per-block spill area addressed off the
    /// register-file base pointer).
    Spill(u32),
}

/// The result of register allocation for one block.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Assignment per virtual register id.
    pub assignment: HashMap<u32, Assignment>,
    /// `dead[i]` is true if LIR instruction `i` can be skipped by the encoder.
    pub dead: Vec<bool>,
    /// Number of spill slots used (GPR and XMM slots share the numbering).
    pub spill_slots: u32,
}

/// Live range of one virtual register (instruction indices, inclusive).
#[derive(Debug, Clone, Copy)]
struct Range {
    vreg: Vreg,
    start: usize,
    end: usize,
}

/// Runs liveness analysis, dead-code marking and linear-scan assignment.
pub fn allocate(lir: &[LirInsn]) -> Allocation {
    // Forward pass: first and last occurrence of every vreg, plus use counts.
    let mut first: HashMap<u32, (Vreg, usize)> = HashMap::new();
    let mut last: HashMap<u32, usize> = HashMap::new();
    let mut use_count: HashMap<u32, u32> = HashMap::new();
    let mut scratch = Vec::with_capacity(4);
    for (i, insn) in lir.iter().enumerate() {
        scratch.clear();
        insn.uses(&mut scratch);
        for v in &scratch {
            *use_count.entry(v.id).or_default() += 1;
            first.entry(v.id).or_insert((*v, i));
            last.insert(v.id, i);
        }
        if let Some(d) = insn.def() {
            first.entry(d.id).or_insert((d, i));
            last.insert(d.id, i);
        }
    }

    // Dead-code marking: pure instructions whose destination is never read.
    let mut dead = vec![false; lir.len()];
    for (i, insn) in lir.iter().enumerate() {
        if insn.has_side_effect() {
            continue;
        }
        if let Some(d) = insn.def() {
            if use_count.get(&d.id).copied().unwrap_or(0) == 0 {
                dead[i] = true;
            }
        }
    }

    // Build live ranges (skipping vregs only defined by dead instructions).
    let mut ranges: Vec<Range> = first
        .iter()
        .map(|(&id, &(vreg, start))| Range {
            vreg,
            start,
            end: last[&id],
        })
        .collect();
    ranges.sort_by_key(|r| (r.start, r.vreg.id));

    // Linear scan, one pool per register class.
    let mut assignment = HashMap::new();
    let mut active_gpr: Vec<(usize, Gpr)> = Vec::new(); // (end, reg)
    let mut active_xmm: Vec<(usize, Xmm)> = Vec::new();
    let mut free_gpr: Vec<Gpr> = GPR_POOL.to_vec();
    let mut free_xmm: Vec<Xmm> = XMM_POOL.iter().rev().map(|&i| Xmm(i)).collect();
    let mut spill_slots = 0u32;

    for r in &ranges {
        // Expire ranges that ended before this one starts.
        active_gpr.retain(|&(end, reg)| {
            if end < r.start {
                free_gpr.push(reg);
                false
            } else {
                true
            }
        });
        active_xmm.retain(|&(end, reg)| {
            if end < r.start {
                free_xmm.push(reg);
                false
            } else {
                true
            }
        });
        match r.vreg.class {
            VregClass::Gpr => {
                if let Some(reg) = free_gpr.pop() {
                    assignment.insert(r.vreg.id, Assignment::Gpr(reg));
                    active_gpr.push((r.end, reg));
                } else {
                    assignment.insert(r.vreg.id, Assignment::Spill(spill_slots));
                    spill_slots += 1;
                }
            }
            VregClass::Xmm => {
                if let Some(reg) = free_xmm.pop() {
                    assignment.insert(r.vreg.id, Assignment::Xmm(reg));
                    active_xmm.push((r.end, reg));
                } else {
                    assignment.insert(r.vreg.id, Assignment::Spill(spill_slots));
                    spill_slots += 1;
                }
            }
        }
    }

    Allocation {
        assignment,
        dead,
        spill_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LirMem, LirOperand};
    use hvm::{AluOp, MemSize};

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    #[test]
    fn simple_block_gets_registers_without_spills() {
        let lir = vec![
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(0x108),
                size: MemSize::U64,
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(2),
                src: LirOperand::Vreg(v(1)),
            },
            LirInsn::Store {
                src: v(2),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert_eq!(alloc.spill_slots, 0);
        for id in 0..3 {
            assert!(matches!(alloc.assignment[&id], Assignment::Gpr(_)));
        }
        assert!(alloc.dead.iter().all(|d| !d));
    }

    #[test]
    fn unused_pure_results_are_marked_dead() {
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::MovImm { dst: v(1), imm: 2 },
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(alloc.dead[0], "v0 is never used, the MovImm is dead");
        assert!(!alloc.dead[1]);
        assert!(!alloc.dead[2]);
    }

    #[test]
    fn register_reuse_after_range_ends() {
        // Many short-lived vregs must fit in the pool by reuse.
        let mut lir = Vec::new();
        for i in 0..50u32 {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert_eq!(alloc.spill_slots, 0, "short ranges should all fit");
    }

    #[test]
    fn long_overlapping_ranges_spill() {
        // More simultaneously-live vregs than the pool size forces spills.
        let n = GPR_POOL.len() as u32 + 4;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
        }
        for i in 0..n {
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert!(alloc.spill_slots >= 4);
        let spilled = alloc
            .assignment
            .values()
            .filter(|a| matches!(a, Assignment::Spill(_)))
            .count();
        assert_eq!(spilled as u32, alloc.spill_slots);
    }

    #[test]
    fn xmm_class_uses_vector_registers() {
        let xv = |id| Vreg {
            id,
            class: VregClass::Xmm,
        };
        let lir = vec![
            LirInsn::LoadXmm {
                dst: xv(0),
                addr: LirMem::regfile(0x110),
                size: MemSize::U64,
            },
            LirInsn::StoreXmm {
                src: xv(0),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(matches!(alloc.assignment[&0], Assignment::Xmm(_)));
    }
}
