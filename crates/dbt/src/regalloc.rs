//! Register allocation over the low-level IR.
//!
//! As in the paper (Section 2.3.3): a dead-code pass first marks
//! instructions whose results cannot be observed, a forward pass over the
//! surviving instructions discovers live ranges, and a linear scan assigns
//! host registers (splitting to spill slots when the pool is exhausted).
//! The algorithm favours speed over optimality — it is part of the
//! JIT-latency budget measured in Fig. 20.
//!
//! Dead-code marking is *iterative*: backward liveness over virtual
//! registers and host flags, run to a **fixpoint** over the unit's control
//! flow.  Each backward pass records the live set and flag demand at every
//! `Label`; jumps (`Jmp`, `Jcc`, and the looping regions' `BackEdge`) merge
//! their target label's recorded state into their own live-out.  For the
//! forward-only units plain blocks and stitched traces produce, one pass
//! suffices; for *looping* units (a region whose loop closed as an internal
//! back-edge) the passes repeat until the label states stop growing, so DCE
//! and flag-demand tracking fire inside loops exactly as they do in
//! straight-line code — a flag writer at the bottom of a loop body whose
//! only reader sits at the top of the next iteration is kept, and an unused
//! chain inside the body is swept whole.  When a consumer dies its producers
//! die with it, so the chains feeding regfile stores deleted by
//! [`crate::opt`] are removed too.  The states grow monotonically from
//! bottom (nothing live, no demand), so the iteration converges to the
//! least fixpoint — sound liveness for arbitrary intra-unit control flow.
//! The historical one-shot `use_count == 0` marking survives only as a
//! debug-build cross-check: everything it would kill, the fixpoint must
//! kill too.
//!
//! Loops also bend the *live ranges* the linear scan consumes: a virtual
//! register defined before a loop header and read inside the loop is live
//! across the back-edge on every iteration, so its range is extended to the
//! back-edge's position — otherwise the scan could hand its register to a
//! loop-local value whose linear range looks disjoint.

use crate::lir::{LirInsn, Vreg, VregClass, GPR_POOL};
use hvm::{Gpr, Xmm};
use std::collections::{HashMap, HashSet};

/// Vector registers available to the allocator (the top three are reserved
/// as spill scratch — `FpFma` can need reloads for all three of its
/// operands).
pub const XMM_POOL: [u8; 13] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// A general-purpose host register.
    Gpr(Gpr),
    /// A vector host register.
    Xmm(Xmm),
    /// A spill slot (index into the per-block spill area addressed off the
    /// register-file base pointer).
    Spill(u32),
}

/// The result of register allocation for one block.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Assignment per virtual register id.
    pub assignment: HashMap<u32, Assignment>,
    /// `dead[i]` is true if LIR instruction `i` can be skipped by the encoder.
    pub dead: Vec<bool>,
    /// Number of spill slots used (GPR and XMM slots share the numbering).
    pub spill_slots: u32,
}

/// Live range of one virtual register (instruction indices, inclusive).
#[derive(Debug, Clone, Copy)]
struct Range {
    vreg: Vreg,
    start: usize,
    end: usize,
}

/// The liveness state recorded at a label: virtual registers live at the
/// label plus whether the host flags are demanded there.  Grows
/// monotonically across fixpoint passes.
#[derive(Debug, Clone, Default)]
struct LabelState {
    live: HashSet<u32>,
    flags: bool,
}

/// Iterative dead-code marking: backward liveness over virtual registers and
/// host flags, repeated to a fixpoint over the unit's labels.  See the
/// module docs for the rules.
fn mark_dead(lir: &[LirInsn]) -> Vec<bool> {
    let mut label_state: HashMap<u32, LabelState> = HashMap::new();
    let mut dead = vec![false; lir.len()];
    let mut scratch = Vec::with_capacity(4);
    loop {
        let mut changed = false;
        let mut live: HashSet<u32> = HashSet::new();
        // Whether some later kept instruction reads the host flags before a
        // kept writer overwrites them.
        let mut flags_demanded = false;
        for (i, insn) in lir.iter().enumerate().rev() {
            // Successor merge: control flow replaces or widens the linear
            // state.  Forward targets were recorded earlier in this pass;
            // backward targets (loop back-edges) carry the previous pass's
            // state, which is what the outer fixpoint loop converges.
            match insn {
                LirInsn::Jmp { label } => {
                    // The label is the sole successor.
                    let s = label_state.get(label).cloned().unwrap_or_default();
                    live = s.live;
                    flags_demanded = s.flags;
                }
                LirInsn::BackEdge {
                    label, reconcile, ..
                } => {
                    // The machine *falls through* a yielding back-edge when
                    // `reconcile` is set (into the compensation block the
                    // promotion pass placed right after it), so that path is
                    // a second successor and its state — the carriers the
                    // compensation stores read — must stay live.
                    let s = label_state.get(label).cloned().unwrap_or_default();
                    if *reconcile {
                        live.extend(s.live.iter().copied());
                        flags_demanded |= s.flags;
                    } else {
                        live = s.live;
                        flags_demanded = s.flags;
                    }
                }
                LirInsn::Jcc { label, .. } => {
                    // Successors: the fallthrough (current state) and the
                    // label.
                    if let Some(s) = label_state.get(label) {
                        live.extend(s.live.iter().copied());
                        flags_demanded |= s.flags;
                    }
                }
                LirInsn::Ret => {
                    // Nothing in this unit executes after a return to the
                    // dispatcher; host flags are not guest state.
                    live.clear();
                    flags_demanded = false;
                }
                _ => {}
            }
            let needed = match insn {
                // Unconditional effects: memory, PC, control flow, calls and
                // their argument setup, system operations, block structure.
                LirInsn::Store { .. }
                | LirInsn::StoreImm { .. }
                | LirInsn::StoreXmm { .. }
                | LirInsn::SetPcImm { .. }
                | LirInsn::SetPcReg { .. }
                | LirInsn::IncPc { .. }
                | LirInsn::SetArg { .. }
                | LirInsn::CallHelper { .. }
                | LirInsn::Int { .. }
                | LirInsn::Out { .. }
                | LirInsn::In { .. }
                | LirInsn::Syscall
                | LirInsn::TlbFlushAll
                | LirInsn::TlbFlushPcid
                | LirInsn::TraceEdge
                | LirInsn::BackEdge { .. }
                | LirInsn::Ret
                | LirInsn::Jmp { .. }
                | LirInsn::Jcc { .. }
                | LirInsn::Label { .. } => true,
                // Everything else lives only through its destination (or, for
                // flag writers, through an outstanding flag demand) — except
                // that a guest-memory *load* can fault, and the data abort is
                // guest-visible even when the loaded value is dead.
                _ => {
                    let def_live = insn.def().is_some_and(|d| live.contains(&d.id));
                    def_live || insn.may_fault() || (insn.writes_host_flags() && flags_demanded)
                }
            };
            if needed {
                scratch.clear();
                insn.uses(&mut scratch);
                for u in &scratch {
                    live.insert(u.id);
                }
                // Backward flag bookkeeping: a kept writer satisfies later
                // demand; a kept reader creates demand for earlier writers.
                if insn.writes_host_flags() {
                    flags_demanded = false;
                }
                if insn.reads_host_flags() {
                    flags_demanded = true;
                }
            }
            dead[i] = !needed;
            if let LirInsn::Label { id } = insn {
                // Record the live-in of the label (grow-only merge); any
                // growth means a jump somewhere may see a wider state and
                // another pass is required.
                let entry = label_state.entry(*id).or_default();
                for v in &live {
                    if entry.live.insert(*v) {
                        changed = true;
                    }
                }
                if flags_demanded && !entry.flags {
                    entry.flags = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Debug cross-check against the historical one-shot marking: a pure
    // instruction whose destination is read nowhere in the unit must be dead
    // under the fixpoint too (the fixpoint can only kill *more*).
    #[cfg(debug_assertions)]
    {
        let one_shot = mark_dead_one_shot(lir);
        for (i, insn) in lir.iter().enumerate() {
            debug_assert!(
                !one_shot[i] || dead[i],
                "fixpoint liveness kept an instruction one-shot marking kills: {insn:?}"
            );
        }
    }
    dead
}

/// Conservative host-flag liveness for the idiom recognizer: `out[i]` is
/// `true` when some instruction that may execute after instruction `i`
/// reads the host flags (`SetCc`/`CmovCc`/`Jcc`) before any instruction
/// overwrites them.  The bookkeeping mirrors [`mark_dead`]'s flag demand
/// exactly — `Jmp` replaces the linear state with its target label's,
/// `BackEdge` does too (unioning when `reconcile` falls through into a
/// compensation block), `Jcc` unions, `Ret` clears — but every instruction
/// is treated as *kept*, so the answer is sound against any subsequent
/// dead-code outcome: a fusion site where `out[jcc]` is `false` can
/// clobber the flags freely, no matter what the allocator later sweeps.
pub fn host_flags_live_after(lir: &[LirInsn]) -> Vec<bool> {
    let mut label_flags: HashMap<u32, bool> = HashMap::new();
    let mut out = vec![false; lir.len()];
    loop {
        let mut changed = false;
        let mut flags = false;
        for (i, insn) in lir.iter().enumerate().rev() {
            match insn {
                LirInsn::Jmp { label } => {
                    flags = label_flags.get(label).copied().unwrap_or(false);
                }
                LirInsn::BackEdge {
                    label, reconcile, ..
                } => {
                    let s = label_flags.get(label).copied().unwrap_or(false);
                    if *reconcile {
                        flags |= s;
                    } else {
                        flags = s;
                    }
                }
                LirInsn::Jcc { label, .. } => {
                    flags |= label_flags.get(label).copied().unwrap_or(false);
                }
                LirInsn::Ret => flags = false,
                _ => {}
            }
            out[i] = flags;
            if insn.writes_host_flags() {
                flags = false;
            }
            if insn.reads_host_flags() {
                flags = true;
            }
            if let LirInsn::Label { id } = insn {
                let e = label_flags.entry(*id).or_default();
                if flags && !*e {
                    *e = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    out
}

/// The original one-shot marking: pure instructions whose destination is
/// never read anywhere in the unit.  Kept only as a debug-build cross-check
/// for the fixpoint pass (its kill set must be a subset of the fixpoint's).
#[cfg(debug_assertions)]
fn mark_dead_one_shot(lir: &[LirInsn]) -> Vec<bool> {
    let mut use_count: HashMap<u32, u32> = HashMap::new();
    let mut scratch = Vec::with_capacity(4);
    for insn in lir {
        scratch.clear();
        insn.uses(&mut scratch);
        for v in &scratch {
            *use_count.entry(v.id).or_default() += 1;
        }
    }
    let mut dead = vec![false; lir.len()];
    for (i, insn) in lir.iter().enumerate() {
        if insn.has_side_effect() {
            continue;
        }
        if let Some(d) = insn.def() {
            if use_count.get(&d.id).copied().unwrap_or(0) == 0 {
                dead[i] = true;
            }
        }
    }
    dead
}

/// Runs liveness analysis, dead-code marking and linear-scan assignment.
pub fn allocate(lir: &[LirInsn]) -> Allocation {
    let dead = mark_dead(lir);

    // Forward pass over the *surviving* instructions: first and last
    // occurrence of every vreg.  Occurrence maps note both uses and defs at
    // the same index; a def-after-use instruction (the two-address forms,
    // where `dst` is read and written by one instruction) therefore keeps
    // every operand live *through* that index, and the linear scan below
    // only reuses a register for a range starting strictly after another
    // ends (`end < start`, not `end <= start`) — so the operands of a
    // def-after-use instruction can never share a register.
    let mut first: HashMap<u32, (Vreg, usize)> = HashMap::new();
    let mut last: HashMap<u32, usize> = HashMap::new();
    let mut scratch = Vec::with_capacity(4);
    for (i, insn) in lir.iter().enumerate() {
        if dead[i] {
            continue;
        }
        scratch.clear();
        insn.uses(&mut scratch);
        for v in &scratch {
            first.entry(v.id).or_insert((*v, i));
            last.insert(v.id, i);
        }
        if let Some(d) = insn.def() {
            first.entry(d.id).or_insert((d, i));
            last.insert(d.id, i);
        }
    }

    // Loop-carried ranges: a vreg defined before a backward jump's target
    // label and still read at or after it is re-read on *every* iteration,
    // so its range must cover the whole loop — otherwise the linear scan
    // could hand its register to a loop-local value whose (linear) range
    // looks disjoint, clobbering the loop-carried value between iterations.
    let mut label_pos: HashMap<u32, usize> = HashMap::new();
    for (i, insn) in lir.iter().enumerate() {
        if dead[i] {
            continue;
        }
        if let LirInsn::Label { id } = insn {
            label_pos.insert(*id, i);
        }
    }
    let mut back_jumps: Vec<(usize, usize)> = Vec::new(); // (header pos, jump pos)
    for (j, insn) in lir.iter().enumerate() {
        if dead[j] {
            continue;
        }
        let label = match insn {
            LirInsn::Jmp { label } | LirInsn::Jcc { label, .. } => *label,
            LirInsn::BackEdge { label, .. } => *label,
            _ => continue,
        };
        if let Some(&p) = label_pos.get(&label) {
            if p <= j {
                back_jumps.push((p, j));
            }
        }
    }
    // Extension can cascade through nested loops; iterate until stable.
    let mut extended = true;
    while extended {
        extended = false;
        for &(p, j) in &back_jumps {
            for (id, &(_, start)) in &first {
                if start < p {
                    if let Some(end) = last.get_mut(id) {
                        if *end >= p && *end < j {
                            *end = j;
                            extended = true;
                        }
                    }
                }
            }
        }
    }

    // Build live ranges (vregs touched only by dead instructions have no
    // occurrences and get no range).
    let mut ranges: Vec<Range> = first
        .iter()
        .map(|(&id, &(vreg, start))| Range {
            vreg,
            start,
            end: last[&id],
        })
        .collect();
    ranges.sort_by_key(|r| (r.start, r.vreg.id));

    // Linear scan, one pool per register class.
    let mut assignment = HashMap::new();
    let mut active_gpr: Vec<(usize, Gpr)> = Vec::new(); // (end, reg)
    let mut active_xmm: Vec<(usize, Xmm)> = Vec::new();
    let mut free_gpr: Vec<Gpr> = GPR_POOL.to_vec();
    let mut free_xmm: Vec<Xmm> = XMM_POOL.iter().rev().map(|&i| Xmm(i)).collect();
    let mut spill_slots = 0u32;

    for r in &ranges {
        // Expire ranges that ended strictly before this one starts (a range
        // ending *at* this index may be a same-instruction operand of a
        // def-after-use form and must keep its register).
        active_gpr.retain(|&(end, reg)| {
            if end < r.start {
                free_gpr.push(reg);
                false
            } else {
                true
            }
        });
        active_xmm.retain(|&(end, reg)| {
            if end < r.start {
                free_xmm.push(reg);
                false
            } else {
                true
            }
        });
        match r.vreg.class {
            VregClass::Gpr => {
                if let Some(reg) = free_gpr.pop() {
                    assignment.insert(r.vreg.id, Assignment::Gpr(reg));
                    active_gpr.push((r.end, reg));
                } else {
                    assignment.insert(r.vreg.id, Assignment::Spill(spill_slots));
                    spill_slots += 1;
                }
            }
            VregClass::Xmm => {
                if let Some(reg) = free_xmm.pop() {
                    assignment.insert(r.vreg.id, Assignment::Xmm(reg));
                    active_xmm.push((r.end, reg));
                } else {
                    assignment.insert(r.vreg.id, Assignment::Spill(spill_slots));
                    spill_slots += 1;
                }
            }
        }
    }

    Allocation {
        assignment,
        dead,
        spill_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LirMem, LirOperand};
    use hvm::{AluOp, Cond, MemSize};

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    #[test]
    fn faulting_loads_survive_dce_with_dead_destinations() {
        // The exact shape `dbt::opt` produces after dead-store elimination:
        // a guest-memory load whose destination is never read (the regfile
        // store of it died under a covering store).  The load can still
        // fault — deleting it would elide a guest-visible data abort.
        let lir = vec![
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::vreg(v(1), 0), // computed address: can fault
                size: MemSize::U64,
            },
            LirInsn::StoreImm {
                imm: 5,
                addr: LirMem::regfile(8),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(
            !alloc.dead[0],
            "a guest-memory load with a dead destination must survive"
        );
        // A fixed regfile load with a dead destination is still removable.
        let lir2 = vec![
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::regfile(16),
                size: MemSize::U64,
            },
            LirInsn::StoreImm {
                imm: 5,
                addr: LirMem::regfile(8),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc2 = allocate(&lir2);
        assert!(alloc2.dead[0], "regfile loads cannot fault and may die");
    }

    #[test]
    fn simple_block_gets_registers_without_spills() {
        let lir = vec![
            LirInsn::Load {
                dst: v(0),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Load {
                dst: v(1),
                addr: LirMem::regfile(0x108),
                size: MemSize::U64,
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(2),
                src: LirOperand::Vreg(v(1)),
            },
            LirInsn::Store {
                src: v(2),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert_eq!(alloc.spill_slots, 0);
        for id in 0..3 {
            assert!(matches!(alloc.assignment[&id], Assignment::Gpr(_)));
        }
        assert!(alloc.dead.iter().all(|d| !d));
    }

    #[test]
    fn unused_pure_results_are_marked_dead() {
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::MovImm { dst: v(1), imm: 2 },
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(alloc.dead[0], "v0 is never used, the MovImm is dead");
        assert!(!alloc.dead[1]);
        assert!(!alloc.dead[2]);
    }

    #[test]
    fn iterative_dce_sweeps_whole_value_chains() {
        // v0 feeds v1 feeds nothing: the chain dies from consumer to
        // producer, including the flag-writing ALU op (no reader demands the
        // flags before the return).
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::Alu {
                op: AluOp::Add,
                dst: v(1),
                src: LirOperand::Imm(3),
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert_eq!(alloc.dead, vec![true, true, true, false]);
        assert!(
            alloc.assignment.is_empty(),
            "dead chains claim no registers"
        );
    }

    #[test]
    fn nzcv_chain_dies_when_its_store_was_eliminated() {
        // The shape set_nzcv_logic leaves behind once dbt::opt has deleted
        // the covered store: compare + setcc + shift/or chain with no
        // consumer.  Everything must be swept.
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 7 },
            LirInsn::Cmp {
                a: v(0),
                b: LirOperand::Imm(0),
            },
            LirInsn::SetCc {
                cond: Cond::Eq,
                dst: v(1),
            },
            LirInsn::MovReg {
                dst: v(2),
                src: v(1),
            },
            LirInsn::Alu {
                op: AluOp::Shl,
                dst: v(2),
                src: LirOperand::Imm(2),
            },
            LirInsn::Store {
                src: v(0),
                addr: LirMem::regfile(8),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(!alloc.dead[0], "v0 still feeds the store");
        assert!(alloc.dead[1], "unread Cmp dies");
        assert!(alloc.dead[2], "SetCc with a dead destination dies");
        assert!(alloc.dead[3] && alloc.dead[4], "the shift chain dies");
        assert!(!alloc.dead[5] && !alloc.dead[6]);
    }

    #[test]
    fn demanded_flags_keep_their_writer_alive() {
        // The Cmp's destination-free flags are read by a Jcc: it must stay,
        // and so must its operand chain.
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 7 },
            LirInsn::Cmp {
                a: v(0),
                b: LirOperand::Imm(0),
            },
            LirInsn::Jcc {
                cond: Cond::Eq,
                label: 0,
            },
            LirInsn::SetPcImm { imm: 0x1000 },
            LirInsn::Label { id: 0 },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(alloc.dead.iter().all(|d| !d));
    }

    #[test]
    fn flag_demand_is_conservative_at_labels() {
        // A flag writer just before a label join: a reader could be reached
        // through the join, so the writer must survive even with no linear
        // reader between.
        let lir = vec![
            LirInsn::MovImm { dst: v(0), imm: 7 },
            LirInsn::Test {
                a: v(0),
                b: LirOperand::Vreg(v(0)),
            },
            LirInsn::Label { id: 0 },
            LirInsn::SetCc {
                cond: Cond::Ne,
                dst: v(1),
            },
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(alloc.dead.iter().all(|d| !d));
    }

    #[test]
    fn backward_jumps_get_fixpoint_dce() {
        // A looping unit (backward Jmp) no longer falls back to one-shot
        // marking: the whole dead chain is swept, including the chain head
        // whose only "use" sits in another dead instruction (one-shot
        // marking counted that use and kept it).
        let lir = vec![
            LirInsn::Label { id: 0 },
            LirInsn::MovImm { dst: v(0), imm: 1 },
            LirInsn::MovReg {
                dst: v(1),
                src: v(0),
            },
            LirInsn::MovImm { dst: v(2), imm: 2 },
            LirInsn::Store {
                src: v(2),
                addr: LirMem::regfile(0),
                size: MemSize::U64,
            },
            LirInsn::Jmp { label: 0 },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert_eq!(
            alloc.dead,
            vec![false, true, true, false, false, false, false],
            "DCE fires inside looping units and sweeps whole chains"
        );
        assert!(!alloc.assignment.contains_key(&0));
        assert!(!alloc.assignment.contains_key(&1));
    }

    #[test]
    fn flag_demand_crosses_the_back_edge() {
        // A flag writer at the bottom of a loop body whose only reader sits
        // at the *top* of the next iteration: the demand flows through the
        // BackEdge to the loop-header label, so the Cmp must survive.
        let lir = vec![
            LirInsn::Label { id: 0 },
            LirInsn::SetCc {
                cond: Cond::Eq,
                dst: v(1),
            },
            LirInsn::Store {
                src: v(1),
                addr: LirMem::regfile(8),
                size: MemSize::U64,
            },
            LirInsn::MovImm { dst: v(0), imm: 3 },
            LirInsn::Cmp {
                a: v(0),
                b: LirOperand::Imm(0),
            },
            LirInsn::BackEdge {
                pc: 0x1000,
                label: 0,
                reconcile: false,
                weight: 1,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(
            alloc.dead.iter().all(|d| !d),
            "the cross-iteration flag chain must stay alive: {:?}",
            alloc.dead
        );

        // Same loop, but nothing ever reads the flags: the Cmp (and its
        // operand chain) dies even in a looping unit.
        let lir2 = vec![
            LirInsn::Label { id: 0 },
            LirInsn::MovImm { dst: v(2), imm: 7 },
            LirInsn::Store {
                src: v(2),
                addr: LirMem::regfile(8),
                size: MemSize::U64,
            },
            LirInsn::MovImm { dst: v(0), imm: 3 },
            LirInsn::Cmp {
                a: v(0),
                b: LirOperand::Imm(0),
            },
            LirInsn::BackEdge {
                pc: 0x1000,
                label: 0,
                reconcile: false,
                weight: 1,
            },
            LirInsn::Ret,
        ];
        let alloc2 = allocate(&lir2);
        assert!(alloc2.dead[4], "an unread Cmp dies inside a loop");
        assert!(alloc2.dead[3], "its operand chain dies with it");
    }

    #[test]
    fn loop_carried_ranges_extend_across_the_back_edge() {
        // v0 is defined before the loop and read inside it on every
        // iteration; the loop-local v1 is defined and stored after v0's last
        // (linear) use.  Without range extension the scan would let v1 steal
        // v0's register and clobber it between iterations.
        let n = GPR_POOL.len() as u32;
        let mut lir = Vec::new();
        lir.push(LirInsn::MovImm { dst: v(0), imm: 7 });
        lir.push(LirInsn::Label { id: 0 });
        lir.push(LirInsn::Store {
            src: v(0),
            addr: LirMem::regfile(0),
            size: MemSize::U64,
        });
        // Saturate the pool inside the loop so reuse pressure is real.
        for i in 1..=n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::BackEdge {
            pc: 0x1000,
            label: 0,
            reconcile: false,
            weight: 1,
        });
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        let a0 = alloc.assignment[&0];
        for i in 1..=n {
            assert_ne!(
                alloc.assignment[&i], a0,
                "loop-local v{i} must not reuse the loop-carried register"
            );
        }
    }

    #[test]
    fn def_after_use_at_range_boundaries_never_shares_registers() {
        // Audit for the first/last-occurrence maps: saturate the GPR pool,
        // then define a new vreg with a MovReg whose source's live range
        // ends at that same index.  Treating the source's range as open at
        // its end (`end <= start` expiry) would hand the destination the
        // source's register — for the two-address forms that follow such a
        // move, that reads a clobbered value.  The allocator must keep them
        // apart (here: the newcomer spills, since the pool is full).
        let n = GPR_POOL.len() as u32;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
        }
        // v0's last occurrence: the same index where v_n is defined.
        lir.push(LirInsn::MovReg {
            dst: v(n),
            src: v(0),
        });
        // Keep everything live to the end.
        for i in 1..=n {
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert_ne!(
            alloc.assignment[&n], alloc.assignment[&0],
            "a def at its source's last index must not steal the register"
        );
        assert!(matches!(alloc.assignment[&n], Assignment::Spill(_)));
    }

    #[test]
    fn register_reuse_after_range_ends() {
        // Many short-lived vregs must fit in the pool by reuse.
        let mut lir = Vec::new();
        for i in 0..50u32 {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert_eq!(alloc.spill_slots, 0, "short ranges should all fit");
    }

    #[test]
    fn long_overlapping_ranges_spill() {
        // More simultaneously-live vregs than the pool size forces spills.
        let n = GPR_POOL.len() as u32 + 4;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
        }
        for i in 0..n {
            lir.push(LirInsn::Store {
                src: v(i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert!(alloc.spill_slots >= 4);
        let spilled = alloc
            .assignment
            .values()
            .filter(|a| matches!(a, Assignment::Spill(_)))
            .count();
        assert_eq!(spilled as u32, alloc.spill_slots);
    }

    #[test]
    fn dead_chains_free_registers_for_live_ranges() {
        // Pool-sized dead chain plus a pool-sized live set: with iterative
        // DCE the dead vregs claim no registers, so nothing spills.
        let n = GPR_POOL.len() as u32;
        let mut lir = Vec::new();
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(i),
                imm: i as u64,
            });
        }
        for i in 0..n {
            lir.push(LirInsn::MovImm {
                dst: v(n + i),
                imm: i as u64,
            });
        }
        for i in 0..n {
            lir.push(LirInsn::Store {
                src: v(n + i),
                addr: LirMem::regfile((i * 8) as i32),
                size: MemSize::U64,
            });
        }
        lir.push(LirInsn::Ret);
        let alloc = allocate(&lir);
        assert_eq!(alloc.spill_slots, 0, "dead ranges must not cause spills");
        for i in 0..n {
            assert!(alloc.dead[i as usize]);
            assert!(!alloc.assignment.contains_key(&i));
        }
    }

    #[test]
    fn xmm_class_uses_vector_registers() {
        let xv = |id| Vreg {
            id,
            class: VregClass::Xmm,
        };
        let lir = vec![
            LirInsn::LoadXmm {
                dst: xv(0),
                addr: LirMem::regfile(0x110),
                size: MemSize::U64,
            },
            LirInsn::StoreXmm {
                src: xv(0),
                addr: LirMem::regfile(0x100),
                size: MemSize::U64,
            },
            LirInsn::Ret,
        ];
        let alloc = allocate(&lir);
        assert!(matches!(alloc.assignment[&0], Assignment::Xmm(_)));
    }
}
