//! Offline stand-in for the crates.io `proptest` crate.
//!
//! This build environment has no network access, so the real property-testing
//! framework cannot be fetched.  This crate reproduces the subset the
//! repository's tests use: the `proptest!` macro with a `proptest_config`
//! inner attribute, integer-range and tuple strategies,
//! `proptest::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.  Case
//! generation is a deterministic xorshift stream (no shrinking), so failures
//! reproduce bit-for-bit across runs.  Swap the workspace dependency back to
//! crates.io `proptest` when network access is available; no test source
//! changes are required.

use std::ops::Range;

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic pseudo-random generator feeding the strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed generator so every run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator (subset of the real `Strategy` trait: generation only,
/// no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end as u64).saturating_sub(self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let span = self.end.saturating_sub(self.start);
        self.start.wrapping_add(rng.below(span))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Declares property tests: each `fn name(arg in strategy) { .. }` becomes a
/// `#[test]` running `cases` deterministic samples (the user-written
/// `#[test]` attribute arrives through the meta repetition, as with the real
/// macro).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property failed on case {case}: {message}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (returns an error rather than
/// panicking, as the real macro does).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{l:?} != {r:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(
                format!("{l:?} != {r:?}: {}", format!($($fmt)*)),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u32..4096).generate(&mut rng);
            assert!(w < 4096);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::deterministic();
        let s = collection::vec(0u32..8, 1..40);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
