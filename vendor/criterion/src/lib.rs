//! Offline stand-in for the crates.io `criterion` crate.
//!
//! This build environment has no network access, so the real statistical
//! benchmarking harness cannot be fetched.  This crate reproduces the subset
//! of the API the repository's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, bench_function, finish}` and `Bencher::iter` — and reports
//! plain wall-clock means so `cargo bench` still produces comparable numbers.
//! Swap the workspace dependency back to crates.io `criterion` when network
//! access is available; no bench source changes are required.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (configuration carrier).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!("  {name}: {per_iter:?}/iter over {} iters", b.iters);
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
